"""``python -m repro.service`` — serve the demo service, or smoke-test it.

Two modes:

* ``--serve`` — boot a :class:`~repro.service.server.ServiceServer` over the
  demo databases, print ``SERVING http://host:port`` (machine-parseable —
  the benchmark's server subprocess is driven through exactly this line)
  and run until interrupted.
* default (smoke) — boot the same server in-process, fire a concurrent
  client burst at it (``--clients`` threads × ``--requests`` calls each,
  mixing execute / execute_many / explain / stats), scrape ``/metrics``,
  ``/health`` and ``/querylog``, assert that every execution landed in the
  query log with **zero dropped entries**, print a JSON summary and exit
  non-zero on any failure.  This is the CI ``service-smoke`` job.

The demo data is two named tenants' worth of databases: the skewed
3-relation chain (acyclic dispatch) and a consistent 4-cycle (cyclic
dispatch, cluster cover + acyclic quotient).
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from typing import Any, Dict, List

from ..engine.session import EngineSession
from ..generators import (
    generate_consistent_database,
    k_cycle_hypergraph,
    skewed_chain_database,
    skewed_chain_endpoints,
)
from ..relational.schema import DatabaseSchema
from ..telemetry.monitor import MonitorConfig
from .client import ServiceCallError, ServiceClient
from .server import QueryService, ServiceServer


def demo_service(*, log_capacity: int = 4096) -> QueryService:
    """The demo :class:`QueryService`: an acyclic and a cyclic tenant database."""
    session = EngineSession(
        monitor=MonitorConfig(log_capacity=log_capacity))
    service = QueryService(session)
    service.add_database(
        "chain", skewed_chain_database(3, heads=12, fanout=6,
                                       junction_values=4, seed=7))
    cycle_schema = DatabaseSchema.from_hypergraph(k_cycle_hypergraph(4))
    service.add_database(
        "cycle", generate_consistent_database(cycle_schema, universe_rows=40,
                                              domain_size=8, seed=11))
    return service


def _serve(host: str, port: int) -> int:
    service = demo_service()
    with ServiceServer(service, host=host, port=port) as server:
        print(f"SERVING {server.url}", flush=True)
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            print("shutting down", flush=True)
    return 0


def _client_worker(url: str, worker: int, requests: int,
                   failures: List[str]) -> None:
    """One smoke client: prepare once, then a mixed request loop."""
    try:
        client = ServiceClient(url, client_id=f"smoke-{worker}")
        chain_query = client.prepare(
            "chain", outputs=[str(a) for a in skewed_chain_endpoints(3)],
            name=f"chain-endpoints-{worker}")
        cycle_query = client.prepare("cycle", name=f"cycle-full-{worker}")
        expected_rows = None
        for index in range(requests):
            turn = index % 4
            if turn == 0:
                answer = client.execute(chain_query, "chain")
                if expected_rows is None:
                    expected_rows = answer["row_count"]
                elif answer["row_count"] != expected_rows:
                    failures.append(
                        f"worker {worker}: row count drifted "
                        f"({answer['row_count']} != {expected_rows})")
            elif turn == 1:
                client.execute(cycle_query, "cycle", include_rows=False)
            elif turn == 2:
                batch = client.execute_many(chain_query, ["chain", "chain"],
                                            max_workers=2)
                if len(batch["row_counts"]) != 2:
                    failures.append(f"worker {worker}: short batch")
            else:
                text = client.explain(chain_query)
                if "dispatch" not in text:
                    failures.append(f"worker {worker}: odd explain output")
        client.close()
    except ServiceCallError as error:
        # Overload pushback is the admission gate doing its job under a
        # deliberately oversized burst — anything else is a real failure.
        if error.code not in ("overloaded", "shutting-down"):
            failures.append(f"worker {worker}: {error.code}: {error}")
    except Exception as error:  # noqa: BLE001 - reported, not raised
        failures.append(f"worker {worker}: {type(error).__name__}: {error}")


def _smoke(host: str, port: int, clients: int, requests: int) -> int:
    service = demo_service(log_capacity=max(4096, clients * requests * 4))
    failures: List[str] = []
    with ServiceServer(service, host=host, port=port) as server:
        started = time.perf_counter()
        threads = [threading.Thread(target=_client_worker,
                                    args=(server.url, worker, requests,
                                          failures),
                                    name=f"smoke-client-{worker}")
                   for worker in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started

        scraper = ServiceClient(server.url, client_id="smoke-scraper")
        metrics = scraper.metrics_text()
        health = scraper.health()
        querylog = scraper.querylog()
        stats = scraper.stats()
        scraper.close()

    # -------------------------------------------------------------- #
    # Assertions
    # -------------------------------------------------------------- #
    if "engine_queries_total" not in metrics:
        failures.append("/metrics is missing engine_queries_total")
    if health.get("status") != "ok":
        failures.append(f"/health status is {health.get('status')!r}")
    dropped = querylog.get("dropped", -1)
    if dropped != 0:
        failures.append(f"query log dropped {dropped} entries (expected 0)")
    recorded = querylog.get("recorded", 0)
    if recorded <= 0:
        failures.append("query log recorded nothing")
    admission = stats.get("admission", {})
    if admission.get("in_flight", -1) != 0:
        failures.append("in-flight count did not return to zero")

    summary: Dict[str, Any] = {
        "ok": not failures,
        "clients": clients,
        "requests_per_client": requests,
        "elapsed_seconds": round(elapsed, 3),
        "querylog": {"recorded": recorded, "dropped": dropped},
        "health": health,
        "admission": {key: admission.get(key)
                      for key in ("admitted_total", "rejected_queue_full",
                                  "rejected_timeout", "in_flight")},
        "failures": failures,
    }
    print(json.dumps(summary, indent=2, default=str))
    return 0 if not failures else 1


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve the demo query service, or smoke-test it "
                    "with a concurrent client burst.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="port to bind (0 = any free port)")
    parser.add_argument("--serve", action="store_true",
                        help="serve until interrupted instead of smoking")
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent smoke clients (default 8)")
    parser.add_argument("--requests", type=int, default=12,
                        help="requests per smoke client (default 12)")
    arguments = parser.parse_args(argv)
    if arguments.serve:
        return _serve(arguments.host, arguments.port)
    return _smoke(arguments.host, arguments.port,
                  max(1, arguments.clients), max(1, arguments.requests))


if __name__ == "__main__":
    sys.exit(main())
