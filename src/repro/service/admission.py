"""Admission control and the per-client session registry.

The service's backpressure story in one place:

* :class:`AdmissionController` — a condition-variable gate in front of the
  execution pool.  At most ``max_in_flight`` requests execute at once
  globally and ``max_in_flight_per_client`` per client; up to ``max_queued``
  more may *wait* for a slot, each for at most ``queue_timeout_seconds``.
  Anything beyond that is rejected immediately with
  :class:`~repro.service.protocol.OverloadedError` (a 429 on the wire) —
  bounded queues turn overload into fast, explicit feedback instead of
  unbounded latency.  :meth:`~AdmissionController.begin_drain` flips the
  gate for graceful shutdown: waiters and new arrivals get
  :class:`~repro.service.protocol.ShuttingDownError` (503) while already
  admitted work runs to completion, and :meth:`~AdmissionController.drain`
  blocks until the last in-flight request retires.

* :class:`ClientRegistry` / :class:`ClientSession` — the per-client state:
  prepared-query handles (namespaced per client, so tenants cannot execute
  each other's handles), admission counters and first/last-seen bookkeeping,
  all surfaced through ``stats`` and ``/health``-style snapshots.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Tuple

from contextlib import contextmanager

from .protocol import OverloadedError, ShuttingDownError, UnknownQueryError

__all__ = ["AdmissionConfig", "AdmissionController", "ClientSession",
           "ClientRegistry"]


@dataclass(frozen=True)
class AdmissionConfig:
    """The admission knobs (see the README's deployment notes).

    * ``max_in_flight`` — global concurrent-execution cap; size it with the
      execution pool (the service keeps ``pool ≥ max_in_flight + max_queued``
      so queued waiters can never starve running work of threads);
    * ``max_in_flight_per_client`` — one tenant's share of the window;
    * ``max_queued`` — how many admitted-but-waiting requests may park;
    * ``queue_timeout_seconds`` — how long a parked request may wait before
      it is bounced with an overload response.
    """

    max_in_flight: int = 8
    max_in_flight_per_client: int = 4
    max_queued: int = 16
    queue_timeout_seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1")
        if self.max_in_flight_per_client < 1:
            raise ValueError("max_in_flight_per_client must be at least 1")
        if self.max_queued < 0:
            raise ValueError("max_queued must be non-negative")
        if self.queue_timeout_seconds <= 0:
            raise ValueError("queue_timeout_seconds must be positive")


class AdmissionController:
    """The bounded-queue admission gate in front of the execution pool."""

    def __init__(self, config: Optional[AdmissionConfig] = None) -> None:
        self.config = config if config is not None else AdmissionConfig()
        self._cond = threading.Condition()
        self._in_flight: Dict[str, int] = {}
        self._total_in_flight = 0
        self._queued = 0
        self._draining = False
        # Lifetime accounting, all under the condition's lock.
        self._admitted_total = 0
        self._rejected_queue_full = 0
        self._rejected_timeout = 0
        self._rejected_draining = 0

    # ------------------------------------------------------------------ #
    # The gate
    # ------------------------------------------------------------------ #
    @contextmanager
    def admit(self, client: str) -> Iterator[None]:
        """Hold one execution slot for the ``with`` block."""
        self.acquire(client)
        try:
            yield
        finally:
            self.release(client)

    def acquire(self, client: str) -> None:
        """Take a slot for ``client``, waiting up to the queue timeout.

        Raises :class:`OverloadedError` when the wait queue is full or the
        timeout passes without a slot, :class:`ShuttingDownError` once the
        controller is draining.
        """
        config = self.config
        deadline = time.monotonic() + config.queue_timeout_seconds
        with self._cond:
            if self._draining:
                self._rejected_draining += 1
                raise ShuttingDownError()
            if self._has_capacity(client):
                self._grant(client)
                return
            if self._queued >= config.max_queued:
                self._rejected_queue_full += 1
                raise OverloadedError(
                    f"admission queue is full ({config.max_queued} waiting; "
                    f"{self._total_in_flight} in flight)",
                    retry_after_seconds=config.queue_timeout_seconds)
            self._queued += 1
            try:
                while True:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self._rejected_timeout += 1
                        raise OverloadedError(
                            "timed out waiting "
                            f"{config.queue_timeout_seconds:.3f}s for an "
                            "execution slot",
                            retry_after_seconds=config.queue_timeout_seconds)
                    self._cond.wait(remaining)
                    if self._draining:
                        self._rejected_draining += 1
                        raise ShuttingDownError()
                    if self._has_capacity(client):
                        self._grant(client)
                        return
            finally:
                self._queued -= 1

    def release(self, client: str) -> None:
        """Return a slot taken by :meth:`acquire`; wakes waiters."""
        with self._cond:
            count = self._in_flight.get(client, 0)
            if count <= 1:
                self._in_flight.pop(client, None)
            else:
                self._in_flight[client] = count - 1
            self._total_in_flight -= 1
            self._cond.notify_all()

    def _has_capacity(self, client: str) -> bool:
        return (self._total_in_flight < self.config.max_in_flight
                and self._in_flight.get(client, 0)
                < self.config.max_in_flight_per_client)

    def _grant(self, client: str) -> None:
        self._in_flight[client] = self._in_flight.get(client, 0) + 1
        self._total_in_flight += 1
        self._admitted_total += 1

    # ------------------------------------------------------------------ #
    # Drain
    # ------------------------------------------------------------------ #
    def begin_drain(self) -> None:
        """Reject new/waiting work from now on; in-flight work completes."""
        with self._cond:
            self._draining = True
            self._cond.notify_all()

    @property
    def draining(self) -> bool:
        with self._cond:
            return self._draining

    def drain(self, timeout_seconds: float = 10.0) -> bool:
        """Wait for in-flight work to retire; ``True`` when fully drained.

        Call :meth:`begin_drain` first — otherwise new admissions can keep
        the window occupied indefinitely.
        """
        deadline = time.monotonic() + timeout_seconds
        with self._cond:
            while self._total_in_flight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, Any]:
        """The gate's live state and lifetime counters, one consistent read."""
        with self._cond:
            return {
                "max_in_flight": self.config.max_in_flight,
                "max_in_flight_per_client": self.config.max_in_flight_per_client,
                "max_queued": self.config.max_queued,
                "queue_timeout_seconds": self.config.queue_timeout_seconds,
                "in_flight": self._total_in_flight,
                "queued": self._queued,
                "draining": self._draining,
                "admitted_total": self._admitted_total,
                "rejected_queue_full": self._rejected_queue_full,
                "rejected_timeout": self._rejected_timeout,
                "rejected_draining": self._rejected_draining,
                "in_flight_by_client": dict(self._in_flight),
            }


# --------------------------------------------------------------------------- #
# Per-client sessions
# --------------------------------------------------------------------------- #
class ClientSession:
    """One client's service-side state: prepared handles and counters."""

    def __init__(self, client_id: str) -> None:
        self.client_id = client_id
        self.created_at = time.time()
        self._lock = threading.Lock()
        self._handles: Dict[str, Any] = {}
        self._handle_ids = itertools.count(1)
        self.requests = 0
        self.errors = 0
        self.last_seen = self.created_at

    def touch(self, *, error: bool = False) -> None:
        """Record one request (and optionally its failure) against the client."""
        with self._lock:
            self.requests += 1
            if error:
                self.errors += 1
            self.last_seen = time.time()

    def register(self, prepared: Any) -> str:
        """Store a prepared query; return its per-client handle."""
        with self._lock:
            handle = f"q-{next(self._handle_ids)}"
            self._handles[handle] = prepared
            return handle

    def prepared(self, handle: str) -> Any:
        """The prepared query behind ``handle`` (:class:`UnknownQueryError` else)."""
        with self._lock:
            prepared = self._handles.get(handle)
        if prepared is None:
            raise UnknownQueryError(handle)
        return prepared

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {"client": self.client_id,
                    "prepared_queries": len(self._handles),
                    "requests": self.requests,
                    "errors": self.errors,
                    "created_at": self.created_at,
                    "last_seen": self.last_seen}


class ClientRegistry:
    """The service's client table: sessions created on first contact."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._clients: Dict[str, ClientSession] = {}

    def session(self, client_id: str) -> ClientSession:
        """The (created-on-demand) session for ``client_id``."""
        with self._lock:
            session = self._clients.get(client_id)
            if session is None:
                session = self._clients[client_id] = ClientSession(client_id)
            return session

    def sessions(self) -> Tuple[ClientSession, ...]:
        with self._lock:
            return tuple(self._clients.values())

    def snapshot(self) -> Dict[str, Any]:
        sessions = self.sessions()
        return {"clients": len(sessions),
                "sessions": [session.snapshot() for session in sessions]}
