"""``repro.service`` — the concurrent query service over an ``EngineSession``.

The engine's session layer (PR 4) made repeated traffic cheap for *one*
caller; this package makes it a long-lived multi-tenant service:

* :mod:`~repro.service.pool` — the thread-pool execution layer under
  ``PreparedQuery.execute_many(max_workers=…)`` and the server's offload,
  propagating ambient context (tracer, deadline, span tags) into workers;
* :mod:`~repro.service.protocol` — the versioned JSON request/response
  schema (prepare / execute / execute_many / explain / stats) with a
  declared method registry and per-method parameter validation, mirroring
  the MAAS handler allowlist idiom;
* :mod:`~repro.service.admission` — the per-client session registry and
  admission control: per-client and global in-flight caps, a bounded wait
  queue with timeout, explicit 429-style overload responses and graceful
  drain on shutdown;
* :mod:`~repro.service.server` — :class:`QueryService` (the transport-free
  protocol engine: one session + monitor + pool + admission) and
  :class:`ServiceServer`, the asyncio HTTP front-end that mounts the
  monitor's ``/metrics`` / ``/health`` / ``/querylog`` / ``/quality``
  exposition routes next to the ``POST /v1`` RPC endpoint;
* :mod:`~repro.service.client` — the small blocking :class:`ServiceClient`
  used by the tests, the benchmark and the ``python -m repro.service`` demo.

Quick start::

    from repro.service import QueryService, ServiceServer, ServiceClient

    service = QueryService()
    service.add_database("orders", database)
    with ServiceServer(service) as server:
        client = ServiceClient(server.url, client_id="tenant-1")
        handle = client.prepare("orders", outputs=("C0", "C3"))
        answer = client.execute(handle, "orders")
"""

from .admission import AdmissionConfig, AdmissionController, ClientRegistry
from .client import ServiceCallError, ServiceClient
from .pool import ExecutionPool
from .protocol import (
    PROTOCOL_VERSION,
    METHOD_REGISTRY,
    OverloadedError,
    ProtocolError,
    ServiceError,
    ShuttingDownError,
    allowed_methods,
    error_response,
    ok_response,
    parse_request,
)
from .server import QueryService, ServiceServer

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "ClientRegistry",
    "ExecutionPool",
    "PROTOCOL_VERSION",
    "METHOD_REGISTRY",
    "OverloadedError",
    "ProtocolError",
    "ServiceError",
    "ShuttingDownError",
    "ServiceCallError",
    "ServiceClient",
    "QueryService",
    "ServiceServer",
    "allowed_methods",
    "error_response",
    "ok_response",
    "parse_request",
]
