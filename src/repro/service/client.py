"""A small blocking HTTP client for the query service.

Thin by design — ``http.client`` plus JSON, no dependencies — because its
job is to be the *other end* the tests, the benchmark and the
``python -m repro.service`` demo drive.  One :class:`ServiceClient` wraps
one keep-alive connection guarded by a lock, so a client instance may be
shared across threads (calls serialise on the connection); for genuinely
concurrent traffic give each thread its own client, which is what the
benchmark does.

Service-level failures surface as :class:`ServiceCallError` carrying the
protocol error code (``overloaded``, ``timeout``, ``unknown-method``, …)
and the HTTP status, so callers branch on ``error.code`` rather than
string-matching messages.
"""

from __future__ import annotations

import http.client
import json
import threading
from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Tuple
from urllib.parse import urlparse

__all__ = ["ServiceCallError", "ServiceClient"]


class ServiceCallError(Exception):
    """A non-ok response from the service (protocol or transport level)."""

    def __init__(self, message: str, *, code: str = "error",
                 http_status: int = 0,
                 details: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(message)
        self.code = code
        self.http_status = http_status
        self.details = details or {}


class ServiceClient:
    """A blocking JSON-RPC client for one service endpoint.

    ``base_url`` is what :attr:`ServiceServer.url` returns
    (``http://host:port``).  Every request carries ``client_id`` (the
    admission/tenancy key) and a fresh request id, which the service stamps
    onto its trace spans.
    """

    def __init__(self, base_url: str, *, client_id: str = "anonymous",
                 timeout_seconds: float = 30.0) -> None:
        parsed = urlparse(base_url)
        if parsed.scheme not in ("", "http") or not parsed.netloc and not parsed.path:
            raise ValueError(f"unsupported service url {base_url!r}")
        netloc = parsed.netloc or parsed.path
        host, _, port = netloc.partition(":")
        self._host = host or "127.0.0.1"
        self._port = int(port) if port else 80
        self.client_id = client_id
        self._timeout = timeout_seconds
        self._lock = threading.Lock()
        self._connection: Optional[http.client.HTTPConnection] = None
        self._request_ids = iter(range(1, 1 << 62))

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _request(self, method: str, path: str,
                 body: Optional[bytes] = None) -> Tuple[int, str, bytes]:
        """One HTTP exchange, with a single reconnect on a dead keep-alive."""
        headers = {"Content-Type": "application/json",
                   "Connection": "keep-alive"}
        with self._lock:
            for attempt in (0, 1):
                if self._connection is None:
                    self._connection = http.client.HTTPConnection(
                        self._host, self._port, timeout=self._timeout)
                try:
                    self._connection.request(method, path, body=body,
                                             headers=headers)
                    response = self._connection.getresponse()
                    payload = response.read()
                    content_type = response.getheader("Content-Type", "")
                    return response.status, content_type, payload
                except (http.client.HTTPException, ConnectionError, OSError):
                    # The server may have dropped an idle keep-alive
                    # connection; retry once on a fresh one.
                    self._teardown()
                    if attempt:
                        raise
        raise AssertionError("unreachable")

    def _teardown(self) -> None:
        if self._connection is not None:
            try:
                self._connection.close()
            except Exception:  # noqa: BLE001 - already broken
                pass
            self._connection = None

    def close(self) -> None:
        with self._lock:
            self._teardown()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------ #
    # The RPC surface
    # ------------------------------------------------------------------ #
    def call(self, method: str, *, params: Optional[Mapping[str, Any]] = None,
             ) -> Dict[str, Any]:
        """POST one protocol request; return the ``result`` document.

        Raises :class:`ServiceCallError` with the protocol error code on any
        non-ok envelope.
        """
        document = {"version": 1,
                    "method": method,
                    "client": self.client_id,
                    "id": f"{self.client_id}-{next(self._request_ids)}",
                    "params": dict(params or {})}
        body = json.dumps(document).encode("utf-8")
        status, _, payload = self._request("POST", "/v1", body)
        try:
            envelope = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise ServiceCallError(
                f"service returned non-JSON payload (HTTP {status})",
                code="transport-error", http_status=status)
        if not isinstance(envelope, dict) or not envelope.get("ok", False):
            error = envelope.get("error", {}) if isinstance(envelope, dict) \
                else {}
            raise ServiceCallError(
                error.get("message", f"service call failed (HTTP {status})"),
                code=error.get("code", "error"), http_status=status,
                details={key: value for key, value in error.items()
                         if key not in ("code", "message")})
        return envelope.get("result", {})

    def prepare(self, database: str, *,
                outputs: Optional[Iterable[str]] = None,
                options: Optional[Mapping[str, Any]] = None,
                name: Optional[str] = None) -> str:
        """Prepare a query server-side; return its handle (``q-N``)."""
        params: Dict[str, Any] = {"database": database}
        if outputs is not None:
            params["outputs"] = list(outputs)
        if options:
            params["options"] = dict(options)
        if name is not None:
            params["name"] = name
        return self.call("prepare", params=params)["query"]

    def execute(self, query: str, database: str, *,
                include_rows: bool = True,
                deadline_seconds: Optional[float] = None) -> Dict[str, Any]:
        params: Dict[str, Any] = {"query": query, "database": database,
                                  "include_rows": include_rows}
        if deadline_seconds is not None:
            params["deadline_seconds"] = deadline_seconds
        return self.call("execute", params=params)

    def execute_many(self, query: str, databases: Sequence[str], *,
                     include_rows: bool = False,
                     max_workers: Optional[int] = None,
                     deadline_seconds: Optional[float] = None
                     ) -> Dict[str, Any]:
        params: Dict[str, Any] = {"query": query,
                                  "databases": list(databases),
                                  "include_rows": include_rows}
        if max_workers is not None:
            params["max_workers"] = max_workers
        if deadline_seconds is not None:
            params["deadline_seconds"] = deadline_seconds
        return self.call("execute_many", params=params)

    def explain(self, query: str, *, database: Optional[str] = None,
                analyze: bool = False) -> str:
        params: Dict[str, Any] = {"query": query, "analyze": analyze}
        if database is not None:
            params["database"] = database
        return self.call("explain", params=params)["explain"]

    def stats(self) -> Dict[str, Any]:
        return self.call("stats")

    # ------------------------------------------------------------------ #
    # Exposition routes
    # ------------------------------------------------------------------ #
    def get(self, path: str) -> Tuple[int, str, bytes]:
        """Raw GET against an exposition route (status, content type, body)."""
        return self._request("GET", path)

    def get_json(self, path: str) -> Any:
        status, _, payload = self._request("GET", path)
        if status != 200:
            raise ServiceCallError(f"GET {path} returned HTTP {status}",
                                   code="transport-error", http_status=status)
        return json.loads(payload.decode("utf-8"))

    def metrics_text(self) -> str:
        """The Prometheus text exposition from ``/metrics``."""
        status, _, payload = self._request("GET", "/metrics")
        if status != 200:
            raise ServiceCallError(f"GET /metrics returned HTTP {status}",
                                   code="transport-error", http_status=status)
        return payload.decode("utf-8")

    def health(self) -> Dict[str, Any]:
        return self.get_json("/health")

    def querylog(self, *, limit: Optional[int] = None) -> Dict[str, Any]:
        path = "/querylog" if limit is None else f"/querylog?limit={limit}"
        return self.get_json(path)
