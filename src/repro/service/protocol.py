"""The service wire protocol: versioned JSON requests, a declared method registry.

Every RPC is one JSON document POSTed to ``/v1``::

    {"version": 1, "method": "execute", "client": "tenant-1",
     "id": "req-42", "params": {"query": "q-1", "database": "orders"}}

and every reply is one JSON document::

    {"version": 1, "id": "req-42", "ok": true,  "result": {…}}
    {"version": 1, "id": "req-42", "ok": false, "error": {"code": …, …}}

The callable surface is *declared*, not discovered: :data:`METHOD_REGISTRY`
lists the five methods (prepare / execute / execute_many / explain / stats)
with their required and optional parameters and types, and
:func:`parse_request` rejects anything outside that contract — unknown
methods, unsupported versions, missing/unknown/mistyped parameters — before
a handler ever runs.  This mirrors the MAAS websocket-handler idiom of an
explicit ``allowed_methods`` allowlist per handler: the registry is the
single source of truth the server dispatches from, so there is no way to
reach an undeclared method.

Errors are a typed hierarchy carrying a stable machine ``code`` and an HTTP
status: protocol violations are 400s, unknown handles/databases 404s,
admission rejections 429 (:class:`OverloadedError`) or 503
(:class:`ShuttingDownError` during drain), and an execution that breaches
its deadline maps :class:`~repro.exceptions.ExecutionTimeoutError` to a 504
``timeout`` response with the phase and budget attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from ..exceptions import ExecutionTimeoutError, ReproError

__all__ = [
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "Param",
    "MethodSpec",
    "METHOD_REGISTRY",
    "allowed_methods",
    "ServiceError",
    "ProtocolError",
    "UnknownMethodError",
    "UnknownQueryError",
    "UnknownDatabaseError",
    "OverloadedError",
    "ShuttingDownError",
    "ServiceRequest",
    "parse_request",
    "ok_response",
    "error_response",
]

PROTOCOL_VERSION = 1
SUPPORTED_VERSIONS = (1,)


# --------------------------------------------------------------------------- #
# Errors
# --------------------------------------------------------------------------- #
class ServiceError(ReproError):
    """Base class for service-level failures; carries a wire code + HTTP status."""

    code = "service-error"
    http_status = 500

    def payload(self) -> Dict[str, Any]:
        """Extra key/values for the wire ``error`` object (none by default)."""
        return {}


class ProtocolError(ServiceError):
    """The request violates the protocol contract (malformed, mistyped, …)."""

    code = "bad-request"
    http_status = 400

    def __init__(self, message: str, *, code: Optional[str] = None) -> None:
        super().__init__(message)
        if code is not None:
            self.code = code


class UnknownMethodError(ProtocolError):
    """The requested method is not in the declared registry."""

    code = "unknown-method"

    def __init__(self, method: object) -> None:
        super().__init__(f"unknown method {method!r}; expected one of "
                         f"{list(allowed_methods())}")
        self.method = method


class UnknownQueryError(ServiceError):
    """The query handle does not name a prepared query of this client."""

    code = "unknown-query"
    http_status = 404

    def __init__(self, handle: object) -> None:
        super().__init__(f"no prepared query {handle!r} for this client "
                         "(prepare it first — handles are per-client)")
        self.handle = handle


class UnknownDatabaseError(ServiceError):
    """The database name is not registered with the service."""

    code = "unknown-database"
    http_status = 404

    def __init__(self, name: object) -> None:
        super().__init__(f"no database named {name!r} is registered "
                         "with this service")
        self.name = name


class OverloadedError(ServiceError):
    """Admission control rejected the request (429-style backpressure)."""

    code = "overloaded"
    http_status = 429

    def __init__(self, message: str, *, retry_after_seconds: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_seconds = retry_after_seconds

    def payload(self) -> Dict[str, Any]:
        return {"retry_after_seconds": self.retry_after_seconds}


class ShuttingDownError(ServiceError):
    """The service is draining; no new work is admitted."""

    code = "shutting-down"
    http_status = 503

    def __init__(self, message: str = "the service is shutting down; "
                 "no new work is admitted") -> None:
        super().__init__(message)


# --------------------------------------------------------------------------- #
# The method registry
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Param:
    """One declared parameter: name, accepted JSON types, a doc string."""

    name: str
    types: Tuple[type, ...]
    doc: str

    def type_names(self) -> str:
        return " or ".join(t.__name__ for t in self.types)


@dataclass(frozen=True)
class MethodSpec:
    """One declared method: its parameters and whether admission gates it."""

    name: str
    doc: str
    required: Tuple[Param, ...] = ()
    optional: Tuple[Param, ...] = ()
    #: Admission-controlled methods execute engine work and count against
    #: the in-flight caps; ``stats`` stays reachable even under overload.
    admitted: bool = True

    def validate(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        """Check ``params`` against the declaration; return a plain dict."""
        declared = {param.name: param for param in self.required + self.optional}
        unknown = set(params) - set(declared)
        if unknown:
            raise ProtocolError(
                f"unknown parameter(s) {sorted(unknown)} for method "
                f"{self.name!r}; expected a subset of {sorted(declared)}",
                code="unknown-param")
        for param in self.required:
            if param.name not in params:
                raise ProtocolError(
                    f"method {self.name!r} requires parameter {param.name!r} "
                    f"({param.doc})", code="missing-param")
        for name, value in params.items():
            param = declared[name]
            # bool is an int subclass; an int-typed parameter must not
            # silently accept true/false.
            if isinstance(value, bool) and bool not in param.types:
                raise ProtocolError(
                    f"parameter {name!r} of {self.name!r} must be "
                    f"{param.type_names()}, not bool", code="invalid-param")
            if not isinstance(value, param.types):
                raise ProtocolError(
                    f"parameter {name!r} of {self.name!r} must be "
                    f"{param.type_names()}, not {type(value).__name__}",
                    code="invalid-param")
        return dict(params)


_NUMBER = (int, float)

METHOD_REGISTRY: Dict[str, MethodSpec] = {spec.name: spec for spec in (
    MethodSpec(
        name="prepare",
        doc="Compile a query against a registered database's schema; "
            "returns a per-client query handle.",
        required=(Param("database", (str,), "the registered database name"),),
        optional=(
            Param("outputs", (list,), "projection attribute names, in order"),
            Param("name", (str,), "the answer relation's name"),
            Param("options", (dict,), "ExecutionOptions field overrides "
                  "(adaptive, execution_mode, column_backend, "
                  "deadline_seconds, …)"),
        )),
    MethodSpec(
        name="execute",
        doc="Run a prepared query against one registered database.",
        required=(
            Param("query", (str,), "a handle returned by prepare"),
            Param("database", (str,), "the registered database name"),
        ),
        optional=(
            Param("include_rows", (bool,), "return the answer rows "
                  "(default true)"),
            Param("deadline_seconds", _NUMBER, "per-call wall-clock budget "
                  "overriding the prepared options"),
        )),
    MethodSpec(
        name="execute_many",
        doc="Run a prepared query against many registered databases, "
            "overlapped on the service pool.",
        required=(
            Param("query", (str,), "a handle returned by prepare"),
            Param("databases", (list,), "registered database names, in "
                  "batch order"),
        ),
        optional=(
            Param("include_rows", (bool,), "return per-database rows "
                  "(default false — batches are usually accounting traffic)"),
            Param("max_workers", (int,), "cap the batch's concurrency "
                  "(defaults to the service pool size)"),
            Param("deadline_seconds", _NUMBER, "per-run wall-clock budget"),
        )),
    MethodSpec(
        name="explain",
        doc="The prepared plan, rendered; analyze=true executes and adds "
            "estimated-vs-actual.",
        required=(Param("query", (str,), "a handle returned by prepare"),),
        optional=(
            Param("database", (str,), "resolve the per-database plan half"),
            Param("analyze", (bool,), "execute under a recording tracer "
                  "(requires database)"),
        )),
    MethodSpec(
        name="stats",
        doc="Service-level counters: admission, pool, per-client sessions, "
            "session monitor health.",
        admitted=False),
)}


def allowed_methods() -> Tuple[str, ...]:
    """The declared callable surface, in registry order."""
    return tuple(METHOD_REGISTRY)


# --------------------------------------------------------------------------- #
# Requests and responses
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ServiceRequest:
    """One validated request: version, method spec, client, id, params."""

    version: int
    method: str
    client: str
    request_id: Optional[str]
    params: Dict[str, Any] = field(default_factory=dict)

    @property
    def spec(self) -> MethodSpec:
        return METHOD_REGISTRY[self.method]


def parse_request(document: Any) -> ServiceRequest:
    """Validate one decoded JSON document against the protocol contract.

    Raises :class:`ProtocolError` (or the sharper :class:`UnknownMethodError`)
    with a stable machine code; the server maps those straight to 400s.
    """
    if not isinstance(document, dict):
        raise ProtocolError(
            f"a request must be a JSON object, not {type(document).__name__}",
            code="malformed-request")
    version = document.get("version", PROTOCOL_VERSION)
    if not isinstance(version, int) or isinstance(version, bool) \
            or version not in SUPPORTED_VERSIONS:
        raise ProtocolError(
            f"unsupported protocol version {version!r}; this server speaks "
            f"{list(SUPPORTED_VERSIONS)}", code="unsupported-version")
    unknown_keys = set(document) - {"version", "method", "client", "id",
                                    "params"}
    if unknown_keys:
        raise ProtocolError(
            f"unknown request field(s) {sorted(unknown_keys)}",
            code="malformed-request")
    method = document.get("method")
    if not isinstance(method, str):
        raise ProtocolError("a request must name a 'method' (string)",
                            code="malformed-request")
    spec = METHOD_REGISTRY.get(method)
    if spec is None:
        raise UnknownMethodError(method)
    client = document.get("client", "anonymous")
    if not isinstance(client, str) or not client:
        raise ProtocolError("'client' must be a non-empty string",
                            code="malformed-request")
    request_id = document.get("id")
    if request_id is not None and not isinstance(request_id, str):
        raise ProtocolError("'id' must be a string when present",
                            code="malformed-request")
    params = document.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("'params' must be a JSON object",
                            code="malformed-request")
    return ServiceRequest(version=version, method=method, client=client,
                          request_id=request_id,
                          params=spec.validate(params))


def ok_response(request_id: Optional[str], result: Any) -> Dict[str, Any]:
    """The success envelope for one request."""
    return {"version": PROTOCOL_VERSION, "id": request_id, "ok": True,
            "result": result}


def error_response(request_id: Optional[str],
                   error: BaseException) -> Tuple[int, Dict[str, Any]]:
    """Map an exception to ``(http_status, envelope)``.

    :class:`ServiceError` subclasses carry their own code/status;
    :class:`~repro.exceptions.ExecutionTimeoutError` becomes a 504
    ``timeout`` with the breaching phase attached; any other engine error
    (:class:`~repro.exceptions.ReproError`) is a 400 ``engine-error`` —
    the request was well-formed but the engine rejected it; everything
    else is a 500 ``internal-error``.
    """
    detail: Dict[str, Any] = {}
    if isinstance(error, ServiceError):
        status, code = error.http_status, error.code
        detail.update(error.payload())
    elif isinstance(error, ExecutionTimeoutError):
        status, code = 504, "timeout"
        detail.update(phase=error.phase,
                      deadline_seconds=error.deadline_seconds,
                      elapsed_seconds=round(error.elapsed_seconds, 6))
    elif isinstance(error, ReproError):
        status, code = 400, "engine-error"
        detail["error_type"] = type(error).__name__
    else:
        status, code = 500, "internal-error"
        detail["error_type"] = type(error).__name__
    payload = {"version": PROTOCOL_VERSION, "id": request_id, "ok": False,
               "error": {"code": code, "message": str(error), **detail}}
    return status, payload
