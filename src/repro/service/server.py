"""The query service: the protocol engine plus its asyncio HTTP front-end.

Two layers, deliberately separable:

* :class:`QueryService` — transport-free.  Owns one
  :class:`~repro.engine.session.EngineSession` (with a
  :class:`~repro.telemetry.monitor.SessionMonitor` attached), the named
  server-side databases, the per-client registry, the admission gate and
  the batch execution pool.  ``handle(document)`` takes one decoded JSON
  request and returns ``(http_status, response_document)`` — tests drive it
  directly, no sockets involved.
* :class:`ServiceServer` — the stdlib-asyncio HTTP front-end.  One
  ``asyncio.start_server`` loop on a background thread parses requests,
  serves the monitor's exposition routes (``/metrics`` / ``/health`` /
  ``/querylog`` / ``/quality`` — the same payloads as
  :mod:`repro.telemetry.exposition`) plus ``/stats`` inline, and offloads
  every ``POST /v1`` RPC to a request pool so slow executions never stall
  the accept loop.

Concurrency shape: the *request pool* is sized to the whole admission
window (``max_in_flight + max_queued`` plus slack) because admitted-but-
queued requests park inside their worker thread; the separate *batch pool*
runs ``execute_many`` fan-out, so a batch can never deadlock waiting for
threads its own request occupies.  Each request runs under
:func:`~repro.telemetry.tracing.use_span_tags`, so every trace span an
execution produces carries the client and request id.

Graceful drain (:meth:`ServiceServer.close`): stop accepting connections →
flip the admission gate (new work gets 503 ``shutting-down``) → wait for
in-flight requests to retire → cancel idle keep-alive connections → stop
the loop and shut the pools down.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..engine.deadline import deadline_scope
from ..engine.planner import fingerprint_digest
from ..engine.session import EngineSession, ExecutionOptions
from ..relational.database import Database
from ..telemetry.tracing import use_span_tags
from .admission import AdmissionConfig, AdmissionController, ClientRegistry
from .pool import ExecutionPool
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    ServiceRequest,
    UnknownDatabaseError,
    allowed_methods,
    error_response,
    ok_response,
    parse_request,
)

__all__ = ["QueryService", "ServiceServer", "WIRE_OPTION_FIELDS"]

#: The content type Prometheus scrapers expect for the text format.
_METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Request bodies past this are rejected outright (64 MiB — generous for
#: JSON RPC, small enough that a misbehaving client cannot balloon memory).
_MAX_BODY_BYTES = 64 * 1024 * 1024

#: The ``ExecutionOptions`` fields a client may set over the wire.  ``root``
#: needs an in-process Edge object and ``decode`` must stay ``"rows"`` (the
#: service serialises relations), so neither is reachable remotely.
WIRE_OPTION_FIELDS = frozenset({
    "adaptive", "check_reduction", "cluster_row_bound", "sample_limit",
    "force_cyclic", "execution_mode", "column_backend", "trace",
    "deadline_seconds", "shards", "shard_executor",
})


def _statistics_payload(statistics: object) -> Dict[str, Any]:
    """The JSON view of one run's engine statistics (duck-typed, tolerant)."""
    payload: Dict[str, Any] = {
        "plan_name": getattr(statistics, "plan_name", None),
        "output_size": getattr(statistics, "output_size", None),
        "max_intermediate": getattr(statistics, "max_intermediate", None),
        "total_intermediate": getattr(statistics, "total_intermediate", None),
        "semijoin_steps": getattr(statistics, "semijoin_steps", None),
        "rows_removed_by_reduction": getattr(
            statistics, "rows_removed_by_reduction", None),
        "plan_cache_hit": getattr(statistics, "plan_cache_hit", None),
        "execution_mode": getattr(statistics, "execution_mode", None),
    }
    phases = getattr(statistics, "phase_times", ()) or ()
    if phases:
        payload["phase_seconds"] = {phase: seconds for phase, seconds in phases}
    return payload


def _relation_payload(relation: Any) -> Dict[str, Any]:
    """One relation as JSON: ordered columns, deterministically sorted rows.

    ``Relation.rows`` is a frozenset, so the sort (by each value's ``repr``)
    is what makes two equal relations serialise byte-identically — the
    property suite compares concurrent and serial responses literally.
    """
    attributes = relation.attributes
    rows = [[row[attribute] for attribute in attributes]
            for row in relation.rows]
    rows.sort(key=repr)
    return {"name": relation.name,
            "columns": [str(attribute) for attribute in attributes],
            "rows": rows,
            "row_count": len(rows)}


class QueryService:
    """The transport-free protocol engine: session + tenants + admission.

    Dispatch is registry-driven: ``handle`` validates against
    :data:`~repro.service.protocol.METHOD_REGISTRY` and routes to
    ``_method_<name>`` — only declared methods have handlers, and only
    admission-gated ones pass through the gate.
    """

    def __init__(self, session: Optional[EngineSession] = None, *,
                 databases: Optional[Mapping[str, Database]] = None,
                 admission: Optional[AdmissionConfig] = None,
                 pool: Optional[ExecutionPool] = None) -> None:
        self.session = session if session is not None \
            else EngineSession(monitor=True)
        self.admission = AdmissionController(admission)
        # The batch pool fans execute_many out; never share it with the
        # server's request pool (a request waiting on its own batch would
        # deadlock a saturated shared pool).
        self.pool = pool if pool is not None else ExecutionPool(
            max_workers=self.admission.config.max_in_flight)
        self.clients = ClientRegistry()
        self._databases: Dict[str, Database] = {}
        self._databases_lock = threading.Lock()
        if databases:
            for name, database in databases.items():
                self.add_database(name, database)

    # ------------------------------------------------------------------ #
    # Databases
    # ------------------------------------------------------------------ #
    def add_database(self, name: str, database: Database) -> "QueryService":
        """Register (or replace) a named server-side database; chainable."""
        with self._databases_lock:
            self._databases[name] = database
        return self

    def database(self, name: object) -> Database:
        with self._databases_lock:
            database = self._databases.get(name)
        if database is None:
            raise UnknownDatabaseError(name)
        return database

    def database_names(self) -> Tuple[str, ...]:
        with self._databases_lock:
            return tuple(sorted(self._databases))

    # ------------------------------------------------------------------ #
    # The entry point
    # ------------------------------------------------------------------ #
    def handle(self, document: Any) -> Tuple[int, Dict[str, Any]]:
        """One request in, ``(http_status, response_document)`` out.

        Never raises: every failure becomes the matching protocol error
        envelope.  Runs synchronously in the calling thread — the HTTP
        layer offloads calls to its request pool.
        """
        request_id = document.get("id") if isinstance(document, dict) else None
        if request_id is not None and not isinstance(request_id, str):
            request_id = None
        try:
            request = parse_request(document)
        except Exception as error:  # noqa: BLE001 - mapped to an envelope
            return error_response(request_id, error)
        client = self.clients.session(request.client)
        handler = getattr(self, f"_method_{request.method}")
        try:
            with use_span_tags(client=request.client,
                               request_id=request.request_id):
                if request.spec.admitted:
                    with self.admission.admit(request.client):
                        result = handler(request)
                else:
                    result = handler(request)
        except Exception as error:  # noqa: BLE001 - mapped to an envelope
            client.touch(error=True)
            return error_response(request.request_id, error)
        client.touch()
        return 200, ok_response(request.request_id, result)

    # ------------------------------------------------------------------ #
    # Method handlers (one per METHOD_REGISTRY entry)
    # ------------------------------------------------------------------ #
    def _method_prepare(self, request: ServiceRequest) -> Dict[str, Any]:
        params = request.params
        database = self.database(params["database"])
        outputs = params.get("outputs")
        if outputs is not None:
            if not all(isinstance(item, str) for item in outputs):
                raise ProtocolError("'outputs' must be a list of attribute "
                                    "names (strings)", code="invalid-param")
            outputs = tuple(outputs)
        overrides = dict(params.get("options", {}))
        unknown = set(overrides) - WIRE_OPTION_FIELDS
        if unknown:
            raise ProtocolError(
                f"unknown or non-wire option(s) {sorted(unknown)}; expected "
                f"a subset of {sorted(WIRE_OPTION_FIELDS)}",
                code="invalid-param")
        try:
            options = self.session.options.merged(**overrides)
        except (TypeError, ValueError) as error:
            raise ProtocolError(f"invalid options: {error}",
                                code="invalid-param")
        prepared = self.session.prepare(database, outputs, options=options,
                                        name=params.get("name"))
        handle = self.clients.session(request.client).register(prepared)
        return {"query": handle,
                "kind": prepared.kind,
                "name": prepared.name,
                "fingerprint": fingerprint_digest(prepared.fingerprint),
                "options": {field: getattr(prepared.options, field)
                            for field in sorted(WIRE_OPTION_FIELDS)}}

    def _method_execute(self, request: ServiceRequest) -> Dict[str, Any]:
        params = request.params
        prepared = self.clients.session(request.client).prepared(params["query"])
        database = self.database(params["database"])
        deadline = params.get("deadline_seconds")
        if deadline is not None and deadline <= 0:
            raise ProtocolError("deadline_seconds must be positive",
                                code="invalid-param")
        with deadline_scope(deadline):
            result = prepared.execute(database)
        payload: Dict[str, Any] = {
            "database": params["database"],
            "row_count": result.statistics.output_size,
            "statistics": _statistics_payload(result.statistics),
        }
        if params.get("include_rows", True):
            payload["relation"] = _relation_payload(result.relation)
        return payload

    def _method_execute_many(self, request: ServiceRequest) -> Dict[str, Any]:
        params = request.params
        prepared = self.clients.session(request.client).prepared(params["query"])
        names = params["databases"]
        if not names or not all(isinstance(name, str) for name in names):
            raise ProtocolError("'databases' must be a non-empty list of "
                                "registered database names",
                                code="invalid-param")
        databases = [self.database(name) for name in names]
        deadline = params.get("deadline_seconds")
        if deadline is not None and deadline <= 0:
            raise ProtocolError("deadline_seconds must be positive",
                                code="invalid-param")
        max_workers = params.get("max_workers")
        if max_workers is not None and max_workers < 1:
            raise ProtocolError("max_workers must be at least 1",
                                code="invalid-param")
        run_options = {"labels": tuple(names)}
        if max_workers is None or max_workers > 1:
            run_options["pool"] = self.pool
        with deadline_scope(deadline):
            batch = prepared.execute_many(databases, **run_options)
        payload: Dict[str, Any] = {
            "databases": list(names),
            "row_counts": [result.statistics.output_size
                           for result in batch.results],
            "statistics": _statistics_payload(batch.statistics),
        }
        if params.get("include_rows", False):
            payload["relations"] = [_relation_payload(relation)
                                    for relation in batch.relations]
        return payload

    def _method_explain(self, request: ServiceRequest) -> Dict[str, Any]:
        params = request.params
        prepared = self.clients.session(request.client).prepared(params["query"])
        database = None
        if params.get("database") is not None:
            database = self.database(params["database"])
        analyze = params.get("analyze", False)
        if analyze and database is None:
            raise ProtocolError("explain with analyze=true executes the "
                                "query, so it needs a database",
                                code="missing-param")
        return {"kind": prepared.kind,
                "explain": prepared.explain(database, analyze=analyze)}

    def _method_stats(self, request: ServiceRequest) -> Dict[str, Any]:
        return self.stats_payload()

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    @property
    def monitor(self):
        """The session's monitor (the exposition routes' payload source)."""
        return self.session.monitor

    def stats_payload(self) -> Dict[str, Any]:
        """The service-level counters the ``stats`` method and ``/stats`` serve."""
        payload: Dict[str, Any] = {
            "protocol_version": PROTOCOL_VERSION,
            "methods": list(allowed_methods()),
            "databases": list(self.database_names()),
            "admission": self.admission.snapshot(),
            "pool": self.pool.snapshot(),
            "clients": self.clients.snapshot(),
            "session": self.session.describe(),
        }
        monitor = self.monitor
        if monitor is not None:
            payload["health"] = monitor.health_payload()
        return payload

    def begin_drain(self) -> None:
        """Reject new admission-gated work from now on."""
        self.admission.begin_drain()

    def drain(self, timeout_seconds: float = 10.0) -> bool:
        """Wait for in-flight work to retire (call :meth:`begin_drain` first)."""
        return self.admission.drain(timeout_seconds)

    def shutdown(self, timeout_seconds: float = 10.0) -> bool:
        """Drain, then stop the batch pool; ``True`` when fully drained."""
        self.begin_drain()
        drained = self.drain(timeout_seconds)
        self.pool.shutdown(wait=True)
        return drained


# --------------------------------------------------------------------------- #
# The asyncio HTTP front-end
# --------------------------------------------------------------------------- #
class ServiceServer:
    """A background-threaded asyncio HTTP server over one :class:`QueryService`.

    ``port=0`` binds a free port; read :attr:`url` back after :meth:`start`.
    Use as a context manager, or pair :meth:`start` with :meth:`close`.
    """

    def __init__(self, service: QueryService, *, host: str = "127.0.0.1",
                 port: int = 0, drain_timeout_seconds: float = 10.0) -> None:
        self._service = service
        self._requested = (host, port)
        self._drain_timeout = drain_timeout_seconds
        config = service.admission.config
        # Every admitted-or-queued request parks inside one request-pool
        # thread (admission waits happen there), so the pool must cover the
        # whole window or queued requests would starve running ones.
        self._request_pool = ThreadPoolExecutor(
            max_workers=config.max_in_flight + config.max_queued + 4,
            thread_name_prefix="repro-service-rpc")
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._thread: Optional[threading.Thread] = None
        self._connections: set = set()
        self._bound: Tuple[str, int] = (host, port)
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ServiceServer":
        """Bind and serve on a background event-loop thread; idempotent."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(target=self._run_loop,
                                        name="repro-service-loop", daemon=True)
        self._thread.start()
        self._started.wait(timeout=10.0)
        if self._startup_error is not None:
            error, self._startup_error = self._startup_error, None
            self._thread.join(timeout=5.0)
            self._thread = None
            raise error
        return self

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            try:
                server = loop.run_until_complete(asyncio.start_server(
                    self._serve_connection, *self._requested))
            except BaseException as error:  # noqa: BLE001 - surfaced to start()
                self._startup_error = error
                return
            self._server = server
            sockname = server.sockets[0].getsockname()
            self._bound = (str(sockname[0]), int(sockname[1]))
            self._started.set()
            loop.run_forever()
            # Drain-time cleanup, scheduled by close() before stopping us.
            loop.run_until_complete(loop.shutdown_asyncgens())
        finally:
            self._started.set()
            loop.close()

    def close(self) -> None:
        """Graceful drain and shutdown; idempotent.

        Stops accepting, flips the admission gate (new work → 503), waits
        up to the drain timeout for in-flight requests, then tears the
        loop, connections and pools down.
        """
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return
        self._loop = self._thread = None

        def _stop_accepting() -> None:
            if self._server is not None:
                self._server.close()

        loop.call_soon_threadsafe(_stop_accepting)
        # Reject new executions, let admitted ones retire.
        self._service.begin_drain()
        self._service.drain(self._drain_timeout)

        async def _teardown() -> None:
            tasks = tuple(self._connections)
            for task in tasks:
                task.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            loop.stop()

        def _schedule_teardown() -> None:
            loop.create_task(_teardown())

        loop.call_soon_threadsafe(_schedule_teardown)
        thread.join(timeout=self._drain_timeout + 5.0)
        self._request_pool.shutdown(wait=True)
        self._service.pool.shutdown(wait=True)

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def service(self) -> QueryService:
        return self._service

    @property
    def address(self) -> Tuple[str, int]:
        return self._bound

    @property
    def port(self) -> int:
        return self._bound[1]

    @property
    def url(self) -> str:
        host, port = self._bound
        return f"http://{host}:{port}"

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #
    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = headers.get("connection", "").lower() != "close"
                status, content_type, payload = await self._dispatch(
                    method, path, body)
                writer.write(self._render(status, content_type, payload,
                                          keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:  # noqa: BLE001 - socket already gone
                pass

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader
                            ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """Parse one HTTP/1.1 request; ``None`` on a cleanly closed connection."""
        request_line = await reader.readline()
        if not request_line or not request_line.strip():
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            raise ConnectionError("malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        for _ in range(100):
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            raise ConnectionError("too many headers")
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                size = int(length)
            except ValueError:
                raise ConnectionError("bad Content-Length")
            if not 0 <= size <= _MAX_BODY_BYTES:
                raise ConnectionError("unreasonable Content-Length")
            body = await reader.readexactly(size)
        return method, target, headers, body

    @staticmethod
    def _render(status: int, content_type: str, payload: bytes,
                keep_alive: bool) -> bytes:
        reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
                   405: "Method Not Allowed", 429: "Too Many Requests",
                   500: "Internal Server Error", 503: "Service Unavailable",
                   504: "Gateway Timeout"}
        head = (f"HTTP/1.1 {status} {reasons.get(status, 'Status')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
                "Server: repro-service/1.0\r\n\r\n")
        return head.encode("latin-1") + payload

    @staticmethod
    def _json_bytes(document: Any) -> bytes:
        return json.dumps(document, default=str).encode("utf-8")

    async def _dispatch(self, method: str, target: str,
                        body: bytes) -> Tuple[int, str, bytes]:
        """Route one request; JSON everywhere except the Prometheus text."""
        parsed = urlparse(target)
        route = parsed.path.rstrip("/") or "/"
        json_type = "application/json; charset=utf-8"
        try:
            if route == "/v1":
                if method != "POST":
                    return (405, json_type, self._json_bytes(
                        {"error": "POST JSON requests to /v1"}))
                try:
                    document = json.loads(body.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as error:
                    status, envelope = error_response(None, ProtocolError(
                        f"request body is not valid JSON: {error}",
                        code="malformed-request"))
                    return status, json_type, self._json_bytes(envelope)
                loop = asyncio.get_running_loop()
                status, envelope = await loop.run_in_executor(
                    self._request_pool, self._service.handle, document)
                return status, json_type, self._json_bytes(envelope)
            if method != "GET":
                return (405, json_type,
                        self._json_bytes({"error": f"{route} is GET-only"}))
            monitor = self._service.monitor
            if route == "/metrics" and monitor is not None:
                monitor.collect()
                registry = monitor.registry
                text = registry.render_prometheus() if registry is not None \
                    else ""
                return 200, _METRICS_CONTENT_TYPE, text.encode("utf-8")
            if route == "/health" and monitor is not None:
                return 200, json_type, self._json_bytes(
                    monitor.health_payload())
            if route == "/querylog" and monitor is not None:
                limit = self._limit_of(parsed.query)
                return 200, json_type, self._json_bytes(
                    monitor.querylog_payload(limit=limit))
            if route == "/quality" and monitor is not None:
                return 200, json_type, self._json_bytes(
                    monitor.quality_payload())
            if route == "/stats":
                return 200, json_type, self._json_bytes(
                    self._service.stats_payload())
            if route == "/":
                return 200, json_type, self._json_bytes(
                    {"service": "repro-query-service",
                     "protocol_version": PROTOCOL_VERSION,
                     "rpc": {"route": "/v1", "methods": list(allowed_methods())},
                     "routes": ["/metrics", "/health", "/querylog",
                                "/quality", "/stats"]})
            return (404, json_type,
                    self._json_bytes({"error": f"unknown route {route!r}"}))
        except Exception as error:  # noqa: BLE001 - a request must not kill the loop
            return (500, json_type, self._json_bytes(
                {"error": f"{type(error).__name__}: {error}"}))

    @staticmethod
    def _limit_of(query_string: str) -> Optional[int]:
        values = parse_qs(query_string).get("limit")
        if not values:
            return None
        try:
            limit = int(values[-1])
        except ValueError:
            return None
        return limit if limit > 0 else None
