"""Cooperative execution deadlines, threaded ambiently through contextvars.

``ExecutionOptions(deadline_seconds=…)`` gives one execution a wall-clock
budget.  The budget is enforced *cooperatively*: the evaluators call
:func:`check_deadline` between phases (prepare / materialise / encode /
reduce / fold / decode) and raise
:class:`~repro.exceptions.ExecutionTimeoutError` when the budget is spent.
A phase that is already running is never interrupted mid-flight — the
overshoot is bounded by the longest single phase, which keeps the check
free of signals, threads or any per-row cost.

Like the tracer (:mod:`repro.telemetry.tracing`), the active deadline is a
:mod:`contextvars` variable rather than a parameter: the acyclic evaluator,
the cyclic executor and the inner quotient run all see the same deadline
without any signature plumbing, and the service's thread pool propagates it
into worker threads by running jobs under ``contextvars.copy_context()``.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from time import perf_counter
from typing import Iterator, Optional, Tuple

from ..exceptions import ExecutionTimeoutError

__all__ = ["deadline_scope", "active_deadline", "remaining_seconds",
           "check_deadline"]

#: The ambient deadline: ``(expires_at_perf_counter, budget_seconds)`` or None.
_DEADLINE: "ContextVar[Optional[Tuple[float, float]]]" = ContextVar(
    "repro_active_deadline", default=None)


@contextmanager
def deadline_scope(seconds: Optional[float]) -> Iterator[None]:
    """Install a wall-clock budget for the dynamic extent of the block.

    ``None`` is a no-op scope (no deadline).  Scopes nest: an inner scope
    sees only its own budget and the outer budget is restored on exit.  The
    clock starts at entry — installing the scope *is* starting the timer.
    """
    if seconds is None:
        yield
        return
    if seconds <= 0:
        raise ValueError("a deadline budget must be positive")
    token = _DEADLINE.set((perf_counter() + seconds, seconds))
    try:
        yield
    finally:
        _DEADLINE.reset(token)


def active_deadline() -> Optional[Tuple[float, float]]:
    """The ambient ``(expires_at, budget_seconds)`` pair, or ``None``."""
    return _DEADLINE.get()


def remaining_seconds() -> Optional[float]:
    """Seconds left on the ambient deadline (``None`` when none is active).

    May be negative once the budget is spent — callers that poll rather than
    raise (e.g. admission queues) can use the sign directly.
    """
    state = _DEADLINE.get()
    if state is None:
        return None
    return state[0] - perf_counter()


def check_deadline(phase: str) -> None:
    """Raise :class:`ExecutionTimeoutError` if the ambient budget is spent.

    The hot path — no deadline installed — is one contextvar read and an
    ``is None`` test.  ``phase`` names the phase *about to start*, which is
    what the error reports (the breach was observed entering it).
    """
    state = _DEADLINE.get()
    if state is None:
        return
    expires_at, budget = state
    now = perf_counter()
    if now >= expires_at:
        raise ExecutionTimeoutError(
            phase=phase, deadline_seconds=budget,
            elapsed_seconds=budget + (now - expires_at))
