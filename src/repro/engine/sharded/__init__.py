"""``repro.engine.sharded`` — shard-parallel execution past one Python core.

The engine's mode-agnostic drivers evaluate any relation set; this package
makes "distribute the driver" one seam:

* :mod:`~repro.engine.sharded.partitioner` — hash-co-partition a relation
  set on a join key (``interned_id % N`` over the existing columnar id
  buffers, broadcast fallback), with per-shard skew accounting;
* :mod:`~repro.engine.sharded.executor` — pluggable
  :class:`~repro.engine.sharded.executor.ShardExecutor` implementations: an
  in-process thread pool and long-lived worker processes with warm
  per-worker plan caches;
* :mod:`~repro.engine.sharded.serial` — versioned byte payloads shipping
  :class:`~repro.engine.columnar.block.ColumnBlock` id vectors plus the
  interner vocabulary across the process boundary;
* :mod:`~repro.engine.sharded.worker` — the worker process protocol;
* :mod:`~repro.engine.sharded.driver` — fan out per-shard reducer + fold
  runs, merge with dedup, aggregate the accounting.

Enable it per query with ``ExecutionOptions(shards=N)`` (and
``shard_executor="thread"|"process"``), or process-wide with the
``REPRO_SHARDS`` / ``REPRO_SHARD_EXECUTOR`` environment variables.
"""

from __future__ import annotations

import os
from typing import Optional

from .executor import (
    SHARD_EXECUTORS,
    ProcessShardExecutor,
    ShardExecutor,
    ShardTask,
    ThreadShardExecutor,
    shard_executor_for,
    shutdown_shard_executors,
)
from .partitioner import (
    ShardPartition,
    ShardSlice,
    choose_shard_key,
    partition_database,
    partition_relations,
)
from .serial import FORMAT_VERSION, MAGIC, dump_blocks, load_blocks, \
    next_generation_token

__all__ = [
    "SHARD_EXECUTORS",
    "FORMAT_VERSION",
    "MAGIC",
    "ProcessShardExecutor",
    "ShardExecutor",
    "ShardPartition",
    "ShardSlice",
    "ShardTask",
    "ThreadShardExecutor",
    "choose_shard_key",
    "dump_blocks",
    "effective_shard_executor",
    "effective_shards",
    "load_blocks",
    "next_generation_token",
    "partition_database",
    "partition_relations",
    "shard_executor_for",
    "shutdown_shard_executors",
]


def effective_shards(shards: Optional[int]) -> Optional[int]:
    """The shard count to run with: the explicit option, else ``REPRO_SHARDS``.

    Returns ``None`` (unsharded) when neither is set or the environment
    value is not a positive integer.
    """
    if shards is not None:
        return shards
    raw = os.environ.get("REPRO_SHARDS")
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value >= 1 else None


def effective_shard_executor(executor: Optional[str]) -> str:
    """The executor name to run with: option, else env, else ``"thread"``."""
    if executor is not None:
        return executor
    raw = os.environ.get("REPRO_SHARD_EXECUTOR")
    return raw if raw in SHARD_EXECUTORS else "thread"
