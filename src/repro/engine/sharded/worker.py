"""The long-lived shard worker process: warm caches, cold starts paid once.

Each worker owns a private :class:`~repro.engine.session.EngineSession`
(hence a warm structure-plan LRU), a relation cache keyed by partition
generation token, and a per-``(token, spec)`` binding cache holding the
resolved catalog + annotation — so a warm shard execution does zero
planning, zero catalog measurement and zero payload decoding, exactly like
a warm :class:`~repro.engine.session.PreparedQuery` in the parent.

The protocol over the parent's pipe (one request, one reply, in order):

* ``("load", payload)`` → ``("ok", token)`` — decode a
  :mod:`~repro.engine.sharded.serial` block payload into relations;
* ``("execute", token, spec)`` → ``("result", (relation, statistics))``,
  or ``("missing", token)`` when the token's relations were evicted (the
  parent re-sends the load), or ``("timeout", message)`` /
  ``("error", message, traceback)``;
* ``("stop",)`` → the worker exits.

Results cross back as ``(relation, statistics)`` — never the full engine
result, whose plan objects are not guaranteed picklable.
"""

from __future__ import annotations

import os
import traceback
from collections import OrderedDict
from typing import Any, Dict, Tuple

from ...exceptions import ExecutionTimeoutError
from ...relational.relation import Relation
from ..deadline import deadline_scope
from .serial import load_blocks

__all__ = ["worker_main"]

#: Partition generations one worker keeps decoded (LRU beyond this).
_RELATION_CACHE_CAPACITY = 16


def _build_session():
    # Imported lazily so a spawned worker pays the import once, inside
    # worker_main, not at module import in the parent.
    from ..session import EngineSession
    return EngineSession(monitor=None)


def _spec_options(spec: Dict[str, Any]) -> Dict[str, Any]:
    """The worker-side execution options for one spec.

    Sharding-related options are stripped (a worker must never re-shard),
    tracing stays off (spans live in the parent), decode is forced to rows
    (the relation must cross the pipe), and the deadline is re-installed
    from the remaining budget the parent measured at dispatch.
    """
    return dict(adaptive=spec["adaptive"], root=spec["root"],
                check_reduction=spec["check_reduction"],
                cluster_row_bound=spec["cluster_row_bound"],
                sample_limit=spec["sample_limit"],
                force_cyclic=spec["force_cyclic"],
                execution_mode=spec["execution_mode"],
                column_backend=spec["column_backend"],
                decode="rows", trace=False, deadline_seconds=None)


def _spec_key(spec: Dict[str, Any]) -> Tuple[Any, ...]:
    """The binding-cache key: everything that changes the resolved binding."""
    return (spec["name"], spec["output_attributes"], spec["adaptive"],
            spec["root"], spec["check_reduction"], spec["cluster_row_bound"],
            spec["sample_limit"], spec["force_cyclic"],
            spec["execution_mode"], spec["column_backend"])


def _execute_spec(session, relations: Tuple[Relation, ...],
                  spec: Dict[str, Any], bindings: Dict[Tuple[Any, ...], Any]):
    cache_key = (spec["token"],) + _spec_key(spec)
    cached = bindings.get(cache_key)
    if cached is None:
        prepared = session.prepare(relations, spec["output_attributes"],
                                   name=spec["name"], **_spec_options(spec))
        binding = prepared._bind_relations(relations)
        cached = bindings[cache_key] = (prepared, binding)
    prepared, binding = cached
    remaining = spec.get("deadline_remaining")
    if remaining is not None:
        if remaining <= 0:
            raise ExecutionTimeoutError(phase="shard-dispatch",
                                        deadline_seconds=remaining,
                                        elapsed_seconds=0.0)
        with deadline_scope(remaining):
            result = prepared._run(binding)
    else:
        result = prepared._run(binding)
    return result.decoded() if result.relation is None else result.relation, \
        result.statistics


def worker_main(connection) -> None:
    """The worker process entry point: serve requests until ``stop`` or EOF."""
    # A worker must never re-shard its slice: the spec options already pin
    # shards off, but the inherited REPRO_SHARDS environment would re-enable
    # them through the session default — drop it before building the session.
    os.environ.pop("REPRO_SHARDS", None)
    os.environ.pop("REPRO_SHARD_EXECUTOR", None)
    session = _build_session()
    relations_by_token: "OrderedDict[str, Tuple[Relation, ...]]" = OrderedDict()
    bindings: Dict[Tuple[Any, ...], Any] = {}
    while True:
        try:
            message = connection.recv()
        except EOFError:
            break
        kind = message[0]
        if kind == "stop":
            break
        try:
            if kind == "load":
                token, blocks = load_blocks(message[1])
                relations_by_token[token] = tuple(
                    block.to_relation(block.name) for block in blocks)
                relations_by_token.move_to_end(token)
                while len(relations_by_token) > _RELATION_CACHE_CAPACITY:
                    evicted, _ = relations_by_token.popitem(last=False)
                    for key in [k for k in bindings if k[0] == evicted]:
                        del bindings[key]
                connection.send(("ok", token))
            elif kind == "execute":
                token, spec = message[1], message[2]
                relations = relations_by_token.get(token)
                if relations is None:
                    connection.send(("missing", token))
                    continue
                relations_by_token.move_to_end(token)
                relation, statistics = _execute_spec(session, relations,
                                                     spec, bindings)
                connection.send(("result", (relation, statistics)))
            else:
                connection.send(("error", f"unknown message kind {kind!r}", ""))
        except ExecutionTimeoutError as error:
            connection.send(("timeout", str(error)))
        except BaseException as error:  # noqa: BLE001 - reported to the parent
            connection.send(("error", f"{type(error).__name__}: {error}",
                             traceback.format_exc()))
    connection.close()
