"""Versioned byte payloads for shipping column blocks across processes.

:class:`~repro.engine.columnar.block.ColumnBlock` and its storage implement
``__reduce__`` with a compact wire form — per-column dense local-id vectors
(``array('q')`` bytes) plus a deduplicated vocabulary tuple — so pickling a
payload of blocks ships each distinct value once and the receiving process
re-interns the vocabulary through *its own* interner.  This module frames
that pickle with magic bytes and a format version: shard workers are
long-lived, so a worker left over from an older engine generation must
reject a payload it cannot faithfully decode instead of producing garbage.
"""

from __future__ import annotations

import itertools
import os
import pickle
import threading
from typing import Sequence, Tuple

from ...exceptions import ShardPayloadError
from ..columnar.block import ColumnBlock

__all__ = ["MAGIC", "FORMAT_VERSION", "dump_blocks", "load_blocks",
           "next_generation_token"]

#: Frame marker for shard payloads ("Repro SHarD").
MAGIC = b"RSHD"
#: Bump on any change to the block wire form (``__reduce__`` layout).
FORMAT_VERSION = 1

_TOKEN_LOCK = threading.Lock()
_TOKEN_COUNTER = itertools.count()


def next_generation_token() -> str:
    """A process-unique token naming one partition generation.

    Workers key their relation/plan caches by this token, so a re-partition
    (new database, new shard count) never aliases a previous generation's
    cached state.
    """
    with _TOKEN_LOCK:
        counter = next(_TOKEN_COUNTER)
    return f"{os.getpid()}-{counter}"


def dump_blocks(token: str, blocks: Sequence[ColumnBlock]) -> bytes:
    """Frame ``(token, blocks)`` as a versioned byte payload."""
    body = pickle.dumps((token, tuple(blocks)),
                        protocol=pickle.HIGHEST_PROTOCOL)
    return MAGIC + FORMAT_VERSION.to_bytes(2, "big") + body


def load_blocks(payload: bytes) -> Tuple[str, Tuple[ColumnBlock, ...]]:
    """Decode a :func:`dump_blocks` payload, validating magic and version.

    Raises :class:`~repro.exceptions.ShardPayloadError` on a foreign or
    version-mismatched payload — the caller (a shard worker) reports the
    rejection rather than decoding bytes from a different generation.
    """
    if len(payload) < len(MAGIC) + 2 or not payload.startswith(MAGIC):
        raise ShardPayloadError("not a shard block payload (bad magic)")
    version = int.from_bytes(payload[len(MAGIC):len(MAGIC) + 2], "big")
    if version != FORMAT_VERSION:
        raise ShardPayloadError(
            f"shard payload format v{version} does not match this worker's "
            f"v{FORMAT_VERSION}; refusing to decode a mismatched generation")
    token, blocks = pickle.loads(payload[len(MAGIC) + 2:])
    return token, blocks
