"""The shard-parallel run: fan out per-shard engine runs, merge, account.

One entry point, :func:`run_sharded`, called by
:class:`~repro.engine.session.PreparedQuery` when its binding carries a
shard partition.  Each shard runs the *full* reducer + join fold through the
existing mode-agnostic drivers (acyclic or cyclic engine, columnar or row),
so sharding adds exactly one seam: partition before, merge after.

Merging always deduplicates.  When the shard key is projected out of the
output, the same output tuple can be witnessed by several shards (distinct
key values proving the same projected row) — a plain concatenation would
over-count.  In-process columnar merges concatenate the shard blocks' id
columns (they share one interner) and run the columnar ``distinct`` kernel;
cross-process and row-mode merges union the decoded row sets.

The final result is byte-identical to the unsharded engine on every leg:
both sides canonicalise result column order to the sorted attribute order
at the decode boundary, and relation/row equality is order-insensitive.
"""

from __future__ import annotations

from array import array
from time import perf_counter
from typing import Sequence

from ...relational.relation import Relation
from ...relational.schema import RelationSchema
from ..columnar.block import ColumnBlock, block_for
from ..deadline import check_deadline, remaining_seconds
from ..planner import AnnotatedPlan, EngineStatistics
from ..columnar import resolve_execution_mode
from ...telemetry.tracing import current_tracer
from .. import yannakakis as _yannakakis
from ..cyclic import executor as _cyclic
from ..cyclic.plans import CyclicEngineStatistics
from .executor import ShardTask, shard_executor_for
from .serial import dump_blocks

__all__ = ["run_sharded"]


def run_sharded(prepared, binding):
    """Execute one prepared query over its shard partition; merge the results."""
    options = prepared._options
    partition = binding.partition
    shard_count = partition.shard_count
    executor_name = binding.executor_name
    mode = resolve_execution_mode(options.execution_mode)
    decode_mode = _yannakakis.resolve_decode_mode(options.decode, mode)
    kind = prepared._kind
    name = prepared._name
    tracer = current_tracer()

    # In-process columnar shards hand back blocks (they share one interner,
    # so the merge is an id concatenation); everything that crosses a
    # process boundary — and every row-mode run — merges decoded rows.
    # Zero-ary (boolean) results always merge as rows: a block with no key
    # columns has nothing for the distinct kernel to group on.
    blocks_merge = (executor_name == "thread" and mode == "columnar"
                    and (prepared._output is None or len(prepared._output) > 0))
    shard_decode = "block" if blocks_merge else "rows"

    prepare_started = perf_counter()
    tasks = []
    for piece in partition.slices:
        tasks.append(_shard_task(prepared, binding, piece, mode=mode,
                                 shard_decode=shard_decode, tracer=tracer))
    executor = shard_executor_for(executor_name, shard_count)
    prepare_seconds = perf_counter() - prepare_started
    check_deadline("shard-dispatch")

    execute_started = perf_counter()
    outcomes = executor.run(tasks)
    execute_seconds = perf_counter() - execute_started
    check_deadline("merge")

    merge_span = tracer.span("merge")
    merge_started = perf_counter()
    with merge_span:
        shard_statistics = tuple(statistics for _, statistics in outcomes)
        if blocks_merge:
            merged_block = _merge_blocks([block for block, _ in outcomes], name)
            merged_relation = None
        else:
            merged_block = None
            merged_relation = _merge_relations(
                [relation for relation, _ in outcomes], name)
        if merge_span.is_recording:
            merge_span.set("shards", shard_count)
            merge_span.set("strategy", "blocks" if blocks_merge else "rows")
    merge_seconds = perf_counter() - merge_started
    check_deadline("decode")

    decode_started = perf_counter()
    if blocks_merge:
        relation = None if decode_mode == "block" \
            else merged_block.to_relation(name)
    else:
        relation = merged_relation
        if decode_mode == "block":
            merged_block = ColumnBlock.from_relation(merged_relation)
    decode_seconds = perf_counter() - decode_started

    output_size = len(relation) if relation is not None else len(merged_block)
    statistics = _sharded_statistics(
        prepared, binding, shard_statistics, kind=kind, mode=mode,
        output_size=output_size,
        phase_times=(("prepare", prepare_seconds),
                     ("execute", execute_seconds),
                     ("merge", merge_seconds),
                     ("decode", decode_seconds)))
    if kind == "acyclic":
        annotated = binding.plan if isinstance(binding.plan, AnnotatedPlan) \
            else None
        return _yannakakis.EngineResult(
            relation=relation, plan=binding.plan, statistics=statistics,
            annotated=annotated, block=merged_block, result_name=name)
    return _cyclic.CyclicEngineResult(
        relation=relation, plan=binding.plan, statistics=statistics,
        block=merged_block, result_name=name)


# --------------------------------------------------------------------------- #
# Per-shard tasks
# --------------------------------------------------------------------------- #
def _shard_task(prepared, binding, piece, *, mode: str, shard_decode: str,
                tracer) -> ShardTask:
    options = prepared._options
    index = piece.index
    shard_plan = binding.shard_plans[index]
    shard_catalog = binding.shard_catalogs[index]
    shard_relations = piece.relations
    token = f"{binding.token}:{index}"

    def run_local():
        span = tracer.span(f"shard:{index}")
        with span:
            if prepared._kind == "acyclic":
                result = _yannakakis.evaluate(
                    shard_relations, prepared._output, name=prepared._name,
                    check_reduction=options.check_reduction, plan=shard_plan,
                    execution_mode=mode, column_backend=options.column_backend,
                    decode=shard_decode)
            else:
                result = _cyclic.evaluate_cyclic(
                    shard_relations, prepared._output, name=prepared._name,
                    check_reduction=options.check_reduction,
                    cluster_row_bound=options.cluster_row_bound,
                    plan=shard_plan, catalog=shard_catalog,
                    planner=prepared._session.planner,
                    execution_mode=mode,
                    column_backend=options.column_backend,
                    decode=shard_decode)
            if span.is_recording:
                span.set("shard", index)
                span.set("input_rows", piece.partitioned_rows)
                span.set("output_rows", result.statistics.output_size)
        if shard_decode == "block":
            return result.block, result.statistics
        return result.relation, result.statistics

    def payload_factory():
        return dump_blocks(token, tuple(block_for(relation)
                                        for relation in shard_relations))

    spec = {"name": prepared._name,
            "output_attributes": prepared._output,
            "adaptive": options.adaptive,
            "root": options.root,
            "check_reduction": options.check_reduction,
            "cluster_row_bound": options.cluster_row_bound,
            "sample_limit": options.sample_limit,
            "force_cyclic": prepared._kind == "cyclic",
            "execution_mode": mode,
            "column_backend": options.column_backend,
            "deadline_remaining": remaining_seconds()}
    return ShardTask(index, run_local, token=token,
                     payload_factory=payload_factory, spec=spec)


# --------------------------------------------------------------------------- #
# Merging
# --------------------------------------------------------------------------- #
def _merge_blocks(blocks: Sequence[ColumnBlock], name: str) -> ColumnBlock:
    """Union shard blocks by id concatenation + the distinct kernel.

    Every shard block left the engine in canonical (sorted) column order
    over the shared process interner, so the concatenation is positional and
    ``distinct`` removes the cross-shard duplicate witnesses.
    """
    if len(blocks) == 1:
        return blocks[0]
    first = blocks[0]
    attributes = first.attributes
    interner = first.interner
    if any(block.interner is not interner or block.attributes != attributes
           for block in blocks[1:]):
        # Mixed interner generations (a cache clear raced the run) — fall
        # back to the always-correct row merge.
        merged = _merge_relations([block.to_relation(name)
                                   for block in blocks], name)
        return ColumnBlock.from_relation(merged)
    length = sum(len(block) for block in blocks)
    columns = {}
    for attribute in attributes:
        merged_column = array("q")
        for block in blocks:
            column = block.column(attribute)
            if len(block) == len(column):
                merged_column.extend(column)
            else:
                merged_column.extend(column[position]
                                     for position in block.positions)
        columns[attribute] = merged_column
    merged = ColumnBlock._from_ids(name, attributes, columns, length, interner)
    return merged.distinct()


def _merge_relations(relations: Sequence[Relation], name: str) -> Relation:
    """Union shard relations (set semantics dedupes cross-shard witnesses)."""
    first = relations[0]
    schema = first.schema if first.name == name \
        else RelationSchema.of(name, first.schema.attributes)
    if len(relations) == 1:
        return first if first.schema is schema else \
            Relation.from_valid_rows(schema, first.rows)
    rows = frozenset().union(*(relation.rows for relation in relations))
    return Relation.from_valid_rows(schema, rows)


# --------------------------------------------------------------------------- #
# Accounting
# --------------------------------------------------------------------------- #
def _sharded_statistics(prepared, binding, shard_statistics, *, kind: str,
                        mode: str, output_size: int,
                        phase_times) -> EngineStatistics:
    options = prepared._options
    partition = binding.partition
    adaptive = binding.catalog is not None
    plan_name = f"engine-sharded-{kind}" + ("-adaptive" if adaptive else "")
    estimated_outputs = [statistics.estimated_output_size
                         for statistics in shard_statistics]
    estimated_output = sum(estimated_outputs) \
        if estimated_outputs and all(e is not None for e in estimated_outputs) \
        else None
    backend = next((statistics.column_backend
                    for statistics in shard_statistics
                    if statistics.column_backend is not None), None)
    common = dict(
        plan_name=plan_name,
        input_sizes=tuple(len(relation) for relation in binding.relations),
        intermediate_sizes=tuple(
            size for statistics in shard_statistics
            for size in statistics.intermediate_sizes),
        output_size=output_size,
        semijoin_steps=sum(statistics.semijoin_steps
                           for statistics in shard_statistics),
        rows_removed_by_reduction=sum(statistics.rows_removed_by_reduction
                                      for statistics in shard_statistics),
        reduced_sizes=tuple(size for statistics in shard_statistics
                            for size in statistics.reduced_sizes),
        plan_cache_hit=all(statistics.plan_cache_hit
                           for statistics in shard_statistics),
        index_cache_hits=sum(statistics.index_cache_hits
                             for statistics in shard_statistics),
        index_cache_misses=sum(statistics.index_cache_misses
                               for statistics in shard_statistics),
        execution_mode=mode,
        column_backend=backend,
        adaptive=adaptive,
        estimated_intermediate_sizes=tuple(
            size for statistics in shard_statistics
            for size in statistics.estimated_intermediate_sizes),
        estimated_output_size=estimated_output,
        phase_times=tuple(phase_times),
        shards=partition.shard_count,
        shard_executor=binding.executor_name,
        shard_key=None if partition.key is None else str(partition.key),
        shard_row_counts=partition.row_counts,
        shard_skew=partition.skew,
        shard_statistics=tuple(shard_statistics),
    )
    if kind == "acyclic":
        return EngineStatistics(**common)
    return CyclicEngineStatistics(
        cluster_sizes=tuple(size for statistics in shard_statistics
                            for size in getattr(statistics, "cluster_sizes", ())),
        cluster_widths=tuple(
            width for statistics in shard_statistics
            for width in getattr(statistics, "cluster_widths", ())),
        estimated_cluster_sizes=tuple(
            size for statistics in shard_statistics
            for size in getattr(statistics, "estimated_cluster_sizes", ())),
        **common)
