"""Pluggable shard executors: in-process threads or long-lived worker processes.

A :class:`ShardExecutor` runs one :class:`ShardTask` per shard and returns
``(relation, statistics)`` pairs in shard order.  Two implementations:

* :class:`ThreadShardExecutor` — a thread pool in this process.  Ambient
  context (tracer, deadline, span tags) propagates via
  ``contextvars.copy_context()``; useful for testing, for numpy paths that
  release the GIL, and as the default that needs no process plumbing.
* :class:`ProcessShardExecutor` — one long-lived worker *process* per shard
  slot, fed over private pipes with versioned block payloads
  (:mod:`~repro.engine.sharded.serial`).  Shard *i* always lands on worker
  ``i % n``, so each worker's plan/binding caches stay warm across runs of
  the same partition generation.  This is the executor that actually
  escapes the GIL for pure-Python kernels.

Executors are pooled in a module registry keyed by ``(name, shard_count)``
and shut down atexit — sessions and benchmarks share warm workers instead
of forking per query.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from contextvars import copy_context
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ...exceptions import ExecutionTimeoutError, ShardExecutionError

__all__ = ["SHARD_EXECUTORS", "ShardTask", "ShardExecutor",
           "ThreadShardExecutor", "ProcessShardExecutor", "shard_executor_for",
           "shutdown_shard_executors"]

#: The recognised executor names, in preference order for documentation.
SHARD_EXECUTORS: Tuple[str, ...] = ("thread", "process")


class ShardTask:
    """One shard's work order: a local closure plus its process-shippable form.

    ``run_local`` executes the shard in this process (thread executor).
    ``token``/``payload_factory``/``spec`` describe the same work for a
    worker process: the payload ships the shard's relations as a versioned
    block payload, built lazily so the thread executor never serialises.
    """

    __slots__ = ("index", "run_local", "token", "payload_factory", "spec")

    def __init__(self, index: int, run_local: Callable[[], tuple], *,
                 token: str, payload_factory: Callable[[], bytes],
                 spec: Optional[dict]) -> None:
        self.index = index
        self.run_local = run_local
        self.token = token
        self.payload_factory = payload_factory
        self.spec = spec


class ShardExecutor:
    """The executor contract: run all tasks, results in shard order."""

    name: str = "abstract"

    def run(self, tasks: Sequence[ShardTask]) -> List[tuple]:
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release threads/processes; the executor is unusable afterwards."""


class ThreadShardExecutor(ShardExecutor):
    """Fan shards out over an in-process thread pool (context-propagating)."""

    name = "thread"

    def __init__(self, shard_count: int) -> None:
        self._pool = ThreadPoolExecutor(max_workers=max(1, shard_count),
                                        thread_name_prefix="repro-shard")

    def run(self, tasks: Sequence[ShardTask]) -> List[tuple]:
        futures = [self._pool.submit(copy_context().run, task.run_local)
                   for task in tasks]
        return [future.result() for future in futures]

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


class _Worker:
    """A live worker process plus the parent's view of what it has loaded."""

    __slots__ = ("process", "connection", "tokens")

    def __init__(self, process, connection) -> None:
        self.process = process
        self.connection = connection
        self.tokens: set = set()


def _start_method() -> str:
    """``fork`` where available (cheap, shares the warm parent), else spawn."""
    override = os.environ.get("REPRO_SHARD_START_METHOD")
    if override:
        return override
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


class ProcessShardExecutor(ShardExecutor):
    """Long-lived worker processes with warm per-worker plan caches."""

    name = "process"

    def __init__(self, shard_count: int) -> None:
        self._context = multiprocessing.get_context(_start_method())
        self._count = max(1, shard_count)
        self._workers: List[Optional[_Worker]] = [None] * self._count
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------ #
    # Worker lifecycle
    # ------------------------------------------------------------------ #
    def _worker_for(self, slot: int) -> _Worker:
        worker = self._workers[slot]
        if worker is not None and worker.process.is_alive():
            return worker
        from .worker import worker_main
        parent_end, child_end = self._context.Pipe()
        process = self._context.Process(target=worker_main, args=(child_end,),
                                        name=f"repro-shard-worker-{slot}",
                                        daemon=True)
        process.start()
        child_end.close()
        worker = self._workers[slot] = _Worker(process, parent_end)
        return worker

    def run(self, tasks: Sequence[ShardTask]) -> List[tuple]:
        with self._lock:
            if self._closed:
                raise ShardExecutionError("the process shard executor was "
                                          "shut down")
            try:
                return self._run_locked(tasks)
            except (ExecutionTimeoutError, ShardExecutionError):
                raise
            except BaseException as error:
                # A broken pipe / dead worker leaves unknown channel state:
                # dispose the whole pool so the next run starts clean.
                self._dispose()
                raise ShardExecutionError(
                    f"shard executor infrastructure failure: {error}") from error

    def _run_locked(self, tasks: Sequence[ShardTask]) -> List[tuple]:
        # Dispatch everything first (workers run concurrently), then drain
        # replies in send order per worker — the protocol is strictly
        # one-reply-per-request, so ordering is deterministic.
        pending: "deque[Tuple[int, ShardTask, _Worker]]" = deque()
        for task in tasks:
            worker = self._worker_for(task.index % self._count)
            self._dispatch(worker, task)
            pending.append((task.index, task, worker))
        results: Dict[int, tuple] = {}
        while pending:
            index, task, worker = pending.popleft()
            reply = self._receive(worker, task)
            if reply is None:
                # The worker evicted our token: reload and retry at the end
                # (the worker serves messages in order, so appending keeps
                # the one-reply-per-request invariant).
                self._dispatch(worker, task, force_load=True)
                pending.append((index, task, worker))
                continue
            results[index] = reply
        return [results[task.index] for task in tasks]

    def _dispatch(self, worker: _Worker, task: ShardTask, *,
                  force_load: bool = False) -> None:
        if force_load or task.token not in worker.tokens:
            worker.connection.send(("load", task.payload_factory()))
            reply = worker.connection.recv()
            if reply[0] != "ok":
                self._raise_worker_failure(task, reply)
            worker.tokens.add(task.token)
        spec = dict(task.spec)
        spec["token"] = task.token
        worker.connection.send(("execute", task.token, spec))

    def _receive(self, worker: _Worker, task: ShardTask) -> Optional[tuple]:
        reply = worker.connection.recv()
        kind = reply[0]
        if kind == "result":
            return reply[1]
        if kind == "missing":
            worker.tokens.discard(task.token)
            return None
        self._raise_worker_failure(task, reply)

    def _raise_worker_failure(self, task: ShardTask, reply: tuple) -> None:
        self._dispose()
        if reply[0] == "timeout":
            raise ShardExecutionError(
                f"shard {task.index} timed out in its worker: {reply[1]}")
        detail = reply[2] if len(reply) > 2 and reply[2] else reply[1]
        raise ShardExecutionError(
            f"shard {task.index} failed in its worker process "
            f"({self.name} executor): {reply[1]}\n{detail}")

    # ------------------------------------------------------------------ #
    # Teardown
    # ------------------------------------------------------------------ #
    def _dispose(self) -> None:
        for slot, worker in enumerate(self._workers):
            if worker is None:
                continue
            try:
                worker.connection.send(("stop",))
            except OSError:
                pass
            try:
                worker.connection.close()
            except OSError:
                pass
            worker.process.join(timeout=2)
            if worker.process.is_alive():
                worker.process.terminate()
            self._workers[slot] = None
        _forget_executor(self)

    def shutdown(self) -> None:
        with self._lock:
            self._closed = True
            self._dispose()


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
_EXECUTOR_CLASSES = {"thread": ThreadShardExecutor,
                     "process": ProcessShardExecutor}
_EXECUTORS: Dict[Tuple[str, int], ShardExecutor] = {}
_EXECUTORS_LOCK = threading.Lock()


def shard_executor_for(name: str, shard_count: int) -> ShardExecutor:
    """The pooled executor for ``(name, shard_count)`` (created on first use)."""
    if name not in _EXECUTOR_CLASSES:
        raise ValueError(f"unknown shard executor {name!r}; expected one of "
                         f"{SHARD_EXECUTORS}")
    key = (name, shard_count)
    with _EXECUTORS_LOCK:
        executor = _EXECUTORS.get(key)
        if executor is None:
            executor = _EXECUTORS[key] = _EXECUTOR_CLASSES[name](shard_count)
        return executor


def _forget_executor(executor: ShardExecutor) -> None:
    """Drop a disposed executor from the pool (idempotent)."""
    with _EXECUTORS_LOCK:
        for key, pooled in list(_EXECUTORS.items()):
            if pooled is executor:
                _EXECUTORS.pop(key, None)


def shutdown_shard_executors() -> None:
    """Shut down every pooled executor (used by tests and atexit)."""
    with _EXECUTORS_LOCK:
        executors = list(_EXECUTORS.values())
        _EXECUTORS.clear()
    for executor in executors:
        executor.shutdown()


atexit.register(shutdown_shard_executors)
