"""Hash-partitioning a relation set into shard slices on a join key.

The grouped key encoding (PR 5/8) interns every value to a dense integer id,
so partitioning is an integer modulo over the existing ``array('q')`` id
buffers — no value hashing, no row copying beyond regrouping the already
shared :class:`~repro.relational.relation.Row` objects.

Correctness rests on the join being monotone: for any shard key *K*,

* every relation whose schema contains *K* is split so a row lands in shard
  ``id(K) % N`` — two rows that join on *K* agree on it, hence land in the
  same shard;
* every relation *not* containing *K* is **broadcast** (shared by reference)
  to every shard, so joins through non-key attributes see the full relation.

The union of per-shard results therefore equals the unsharded result.  When
the key is projected *out* of the output, the same output tuple can be
witnessed in more than one shard (distinct key values proving the same
projected row), so the merge must always deduplicate — the driver does.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ...relational.database import Database
from ...relational.relation import Relation
from ...relational.schema import Attribute
from ..columnar.block import block_for

__all__ = ["ShardSlice", "ShardPartition", "choose_shard_key",
           "partition_relations", "partition_database"]


def choose_shard_key(relations: Sequence[Relation]) -> Optional[Attribute]:
    """The attribute to co-partition on: the one shared by the most relations.

    Ties break towards the lexicographically smallest attribute so the choice
    is deterministic across runs and processes.  Returns ``None`` when no
    attribute appears in at least two relations — partitioning on a private
    attribute would broadcast everything else, which is all cost and no
    parallelism; the caller should fall back to a single slice.
    """
    counts: "Counter[Attribute]" = Counter()
    for relation in relations:
        counts.update(relation.schema.attributes)
    best: Optional[Attribute] = None
    best_count = 1
    for attribute, count in counts.items():
        if count > best_count or \
                (count == best_count and best is not None
                 and str(attribute) < str(best)):
            best, best_count = attribute, count
    return best


@dataclass(frozen=True)
class ShardSlice:
    """One shard's view of the database: split + broadcast relations."""

    index: int
    relations: Tuple[Relation, ...]
    #: Rows of *partitioned* relations routed to this shard (broadcast rows
    #: are excluded — they are identical everywhere and would mask skew).
    partitioned_rows: int

    def as_database(self, schema) -> Database:
        """This slice as a :class:`Database` over the original schema."""
        return Database(schema, {relation.name: relation
                                 for relation in self.relations})


@dataclass(frozen=True)
class ShardPartition:
    """A full co-partitioning of one relation set on one key attribute.

    ``key`` is ``None`` exactly when partitioning degenerated to a single
    slice (one shard requested, or no shared attribute to split on) — the
    slice then holds the original relations untouched.
    """

    key: Optional[Attribute]
    shard_count: int
    slices: Tuple[ShardSlice, ...]
    partitioned: Tuple[str, ...]
    broadcast: Tuple[str, ...]

    @property
    def row_counts(self) -> Tuple[int, ...]:
        """Partitioned input rows per shard — the distribution behind ``skew``."""
        return tuple(piece.partitioned_rows for piece in self.slices)

    @property
    def skew(self) -> Optional[float]:
        """Max/mean of the per-shard partitioned row counts (1.0 = balanced)."""
        counts = self.row_counts
        total = sum(counts)
        if not counts or total == 0:
            return None
        return max(counts) / (total / len(counts))


def partition_relations(relations: Sequence[Relation], shard_count: int, *,
                        key: Optional[Attribute] = None) -> ShardPartition:
    """Co-partition ``relations`` into ``shard_count`` slices on ``key``.

    ``key=None`` picks the key with :func:`choose_shard_key`.  Relations
    containing the key are split by ``interned_id % shard_count`` over their
    cached column blocks; the rest are broadcast by reference.  With one
    shard (or no viable key) the single slice shares the original relation
    objects outright, so the sharded driver stays byte-identical to the
    unsharded engine even in the degenerate configuration.
    """
    relations = tuple(relations)
    if shard_count < 1:
        raise ValueError("shard_count must be at least 1")
    if key is None:
        key = choose_shard_key(relations)
    if shard_count == 1 or key is None:
        slices = (ShardSlice(index=0, relations=relations,
                             partitioned_rows=sum(len(r) for r in relations)),)
        return ShardPartition(key=None, shard_count=1, slices=slices,
                              partitioned=(),
                              broadcast=tuple(r.name for r in relations))

    partitioned_names: List[str] = []
    broadcast_names: List[str] = []
    per_shard: List[List[Relation]] = [[] for _ in range(shard_count)]
    per_shard_rows = [0] * shard_count
    for relation in relations:
        if key not in relation.schema.attribute_set or not relation:
            # Broadcast (or trivially empty): every shard shares the object.
            broadcast_names.append(relation.name)
            for shard in per_shard:
                shard.append(relation)
            continue
        partitioned_names.append(relation.name)
        block = block_for(relation)
        column = block.column(key)
        rows = block.source_rows
        buckets: List[List] = [[] for _ in range(shard_count)]
        for position in block.positions:
            buckets[column[position] % shard_count].append(rows[position])
        for index, bucket in enumerate(buckets):
            per_shard[index].append(
                Relation.from_valid_rows(relation.schema, frozenset(bucket)))
            per_shard_rows[index] += len(bucket)
    slices = tuple(
        ShardSlice(index=index, relations=tuple(shard_relations),
                   partitioned_rows=per_shard_rows[index])
        for index, shard_relations in enumerate(per_shard))
    return ShardPartition(key=key, shard_count=shard_count, slices=slices,
                          partitioned=tuple(partitioned_names),
                          broadcast=tuple(broadcast_names))


def partition_database(database: Database, shard_count: int, *,
                       key: Optional[Attribute] = None
                       ) -> Tuple[ShardPartition, Tuple[Database, ...]]:
    """Partition a database; also return each slice as a :class:`Database`."""
    partition = partition_relations(database.relations(), shard_count, key=key)
    databases = tuple(piece.as_database(database.schema)
                      for piece in partition.slices)
    return partition, databases
