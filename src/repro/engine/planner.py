"""Plan objects, cost/statistics accounting and the LRU plan cache.

Deriving an execution plan for an acyclic schema means running GYO / the
maximum-weight-spanning-tree construction, validating the running-intersection
property, rooting the tree and compiling the full reducer — all of which
depend only on the schema's *hypergraph*, not on the stored tuples.  The
planner therefore caches compiled :class:`ExecutionPlan` objects in an LRU
keyed by a canonical **schema fingerprint**, so repeated queries over the
same hypergraph skip the whole analysis.

Planning is two-phase.  The fingerprint-cached :class:`ExecutionPlan` is the
**structure plan**; handing it a per-database
:class:`~repro.engine.catalog.StatisticsCatalog` (see :meth:`QueryPlanner.annotate`
or the :meth:`QueryPlanner.plan_for` entry point with a
:class:`~repro.relational.database.Database`) yields an :class:`AnnotatedPlan`
— the same structure plus a data-dependent
:class:`~repro.engine.catalog.CostAnnotation`: a cardinality-chosen root, a
per-parent fold order and a cost-ordered reducer.  Annotations are cheap and
never cached; the structure cache is untouched (a re-rooted structure is just
another ``(fingerprint, root)`` entry).

:class:`EngineStatistics` absorbs the tuple-count accounting of
:class:`~repro.relational.join_plans.JoinStatistics` (so benchmark tables can
compare engines and naive plans side by side) and extends it with semijoin,
reduction, cache and estimated-vs-actual counters.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cyclic imports planner)
    from .cyclic.plans import CyclicExecutionPlan

from ..core.hypergraph import Edge, Hypergraph
from ..core.join_tree import JoinTree, RootedJoinTree, build_join_tree
from ..core.nodes import node_sort_key, sorted_nodes
from ..exceptions import CyclicHypergraphError
from ..relational.database import Database
from ..relational.join_plans import JoinStatistics
from ..relational.schema import DatabaseSchema
from ..telemetry.tracing import current_tracer
from .catalog import CostAnnotation, StatisticsCatalog, annotate_tree
from .reducer import FullReducer

__all__ = [
    "SchemaFingerprint",
    "schema_fingerprint",
    "EngineStatistics",
    "ExecutionPlan",
    "AnnotatedPlan",
    "annotate_plan",
    "PlanCacheInfo",
    "QueryPlanner",
    "DEFAULT_PLANNER",
]

SchemaFingerprint = Tuple[Tuple[object, ...], ...]

#: Cache-key tag distinguishing cyclic plans from acyclic ones in the shared LRU.
_CYCLIC_KIND = "cyclic"


def schema_fingerprint(source: Union[Hypergraph, DatabaseSchema, Iterable[Iterable[object]]]
                       ) -> SchemaFingerprint:
    """A canonical, hashable fingerprint of a hypergraph / database schema.

    The fingerprint is the sorted tuple of sorted edges, so it is invariant
    under edge order, duplicate edges and attribute order — any two schemas
    with the same objects over the same attributes plan identically.
    """
    if isinstance(source, DatabaseSchema):
        edges: Iterable[Iterable[object]] = (r.attribute_set for r in source)
    elif isinstance(source, Hypergraph):
        edges = source.edges
    else:
        edges = source
    canonical = sorted({tuple(sorted_nodes(edge)) for edge in edges},
                       key=lambda edge: tuple(node_sort_key(node) for node in edge))
    return tuple(canonical)


def fingerprint_digest(fingerprint: SchemaFingerprint) -> str:
    """A short hex digest of a fingerprint, for logs and plan descriptions."""
    return hashlib.sha256(repr(fingerprint).encode("utf-8")).hexdigest()[:12]


def _node_from_json(node: object) -> object:
    """Undo JSON's tuple→list coercion when rebuilding dumped fingerprints.

    Nodes are hashable, so a list in the decoded document can only have been
    a tuple before ``json.dumps``; strings, numbers and booleans round-trip
    unchanged.
    """
    if isinstance(node, list):
        return tuple(_node_from_json(item) for item in node)
    return node


@dataclass
class EngineStatistics(JoinStatistics):
    """Join-plan accounting extended with the engine's semijoin/caching counters.

    ``intermediate_sizes`` (inherited) records the materialised size after
    every bottom-up join step *with projection already fused in* — the number
    the acyclicity story bounds.  ``reduced_sizes`` are the per-vertex sizes
    after the full-reducer passes.
    """

    semijoin_steps: int = 0
    rows_removed_by_reduction: int = 0
    reduced_sizes: Tuple[int, ...] = ()
    plan_cache_hit: bool = False
    #: Physical-structure cache traffic during the run: the hash-index cache
    #: (:func:`~repro.engine.indexes.index_cache_info`) in row mode, the
    #: per-relation block cache in columnar mode — either way, "how much of
    #: the build work was reused" is observable per run and in reports.
    index_cache_hits: int = 0
    index_cache_misses: int = 0
    execution_mode: str = "row"
    #: The column-buffer backend the columnar run computed on (``"array"`` or
    #: ``"numpy"``); ``None`` for row-mode runs, which have no backend.
    column_backend: Optional[str] = None
    adaptive: bool = False
    estimated_intermediate_sizes: Tuple[int, ...] = ()
    estimated_output_size: Optional[int] = None
    #: Measured per-phase wall-times of the run, as ``(phase name, seconds)``
    #: pairs in execution order — e.g. ``prepare``/``encode``/``reduce``/
    #: ``fold``/``decode`` for the acyclic evaluator.  Empty for results
    #: produced before timing existed, so reports must treat it as optional.
    phase_times: Tuple[Tuple[str, float], ...] = ()
    #: The serving planner's LRU hit ratio at the time of the run (stamped by
    #: :class:`~repro.engine.session.EngineSession`; ``None`` outside one).
    planner_hit_ratio: Optional[float] = None
    #: Shard-parallel accounting (``None``/empty for unsharded runs).
    #: ``shard_row_counts`` are the partitioned input rows routed to each
    #: shard — the distribution behind ``shard_skew`` (max/mean of those
    #: counts; 1.0 is perfectly balanced).  ``shard_statistics`` carries the
    #: per-shard engine statistics objects so per-shard phase timings stay
    #: inspectable without re-running.
    shards: Optional[int] = None
    shard_executor: Optional[str] = None
    shard_key: Optional[str] = None
    shard_row_counts: Tuple[int, ...] = ()
    shard_skew: Optional[float] = None
    shard_statistics: Tuple[object, ...] = ()

    @property
    def elapsed_seconds(self) -> Optional[float]:
        """Total measured wall-time (``None`` when the run was not timed)."""
        if not self.phase_times:
            return None
        return sum(seconds for _, seconds in self.phase_times)

    @property
    def max_reduced_input(self) -> int:
        """The largest relation after reduction (0 when nothing was reduced)."""
        return max(self.reduced_sizes, default=0)

    @property
    def estimated_max_intermediate(self) -> Optional[int]:
        """The annotation's predicted largest intermediate (``None`` when static)."""
        if not self.adaptive:
            return None
        return max(self.estimated_intermediate_sizes, default=0)

    @property
    def reduction_ratio(self) -> float:
        """Fraction of stored tuples removed as dangling by the reducer."""
        total = sum(self.input_sizes)
        return (self.rows_removed_by_reduction / total) if total else 0.0

    def describe(self) -> str:
        """A one-line summary aligned with ``JoinStatistics.describe``."""
        base = super().describe()
        mode = self.execution_mode
        if self.column_backend is not None:
            mode += f"[{self.column_backend}]"
        summary = (f"{base} mode={mode} "
                   f"semijoins={self.semijoin_steps} "
                   f"removed={self.rows_removed_by_reduction} "
                   f"reduced={list(self.reduced_sizes)} "
                   f"plan_cache={'hit' if self.plan_cache_hit else 'miss'} "
                   f"index_cache={self.index_cache_hits}h/{self.index_cache_misses}m")
        if self.adaptive:
            summary += (f" adaptive est_max={self.estimated_max_intermediate} "
                        f"est_output={self.estimated_output_size}")
        if self.phase_times:
            phases = " ".join(f"{phase}={seconds * 1000:.2f}ms"
                              for phase, seconds in self.phase_times)
            summary += f" wall={self.elapsed_seconds * 1000:.2f}ms ({phases})"
        if self.planner_hit_ratio is not None:
            summary += f" planner_hits={self.planner_hit_ratio:.0%}"
        if self.shards is not None:
            summary += (f" shards={self.shards}[{self.shard_executor}]"
                        f" key={self.shard_key}")
            if self.shard_skew is not None:
                summary += f" skew={self.shard_skew:.2f}"
        return summary


@dataclass(frozen=True)
class ExecutionPlan:
    """A compiled plan for one schema fingerprint: join tree, rooting, reducer.

    Plans are data-independent; the same plan evaluates every database whose
    schema has the plan's fingerprint.
    """

    fingerprint: SchemaFingerprint
    join_tree: JoinTree
    rooted: RootedJoinTree
    reducer: FullReducer
    root: Optional[Edge] = None

    @property
    def vertices(self) -> Tuple[Edge, ...]:
        """The join-tree vertices (hypergraph edges), in tree-vertex order."""
        return self.join_tree.vertices

    def estimated_semijoin_steps(self) -> int:
        """How many semijoin steps one reducer run performs."""
        return len(self.reducer)

    def describe(self) -> str:
        """A multi-line plan rendering: fingerprint, tree and reducer program."""
        lines = [f"ExecutionPlan {fingerprint_digest(self.fingerprint)} "
                 f"({len(self.vertices)} vertices, {len(self.reducer)} semijoin steps)",
                 self.join_tree.describe(),
                 self.reducer.describe()]
        return "\n".join(lines)


@dataclass(frozen=True)
class AnnotatedPlan:
    """A structure plan composed with a per-database cost annotation.

    The structure half is a fingerprint-cached :class:`ExecutionPlan` (a new
    rooting is just another cache entry — the cache is never invalidated);
    the annotation half is data-dependent and recomputed per database.
    ``reducer`` is the structure plan's full reducer with its sibling
    semijoins re-ordered smallest-estimated-first.
    """

    structure: ExecutionPlan
    catalog: StatisticsCatalog
    annotation: CostAnnotation
    reducer: FullReducer

    # Structure proxies, so the evaluator treats annotated and plain plans
    # uniformly.
    @property
    def fingerprint(self) -> SchemaFingerprint:
        """The structure plan's schema fingerprint."""
        return self.structure.fingerprint

    @property
    def join_tree(self) -> JoinTree:
        """The structure plan's join tree."""
        return self.structure.join_tree

    @property
    def rooted(self) -> RootedJoinTree:
        """The structure plan's (annotation-chosen) rooting."""
        return self.structure.rooted

    @property
    def vertices(self) -> Tuple[Edge, ...]:
        """The join-tree vertices, in tree-vertex order."""
        return self.structure.vertices

    @property
    def root(self) -> Optional[Edge]:
        """The structure plan's requested root."""
        return self.structure.root

    def estimated_semijoin_steps(self) -> int:
        """How many semijoin steps one reducer run performs."""
        return len(self.reducer)

    def order_children(self, vertex: Edge,
                       children: Sequence[Edge]) -> Tuple[Edge, ...]:
        """The annotation's fold order for one vertex's children."""
        return self.annotation.order_children(vertex, children)

    def describe(self) -> str:
        """The structure plan's rendering plus the annotation summary."""
        return "\n".join([self.structure.describe(), self.annotation.describe()])


def annotate_plan(structure: ExecutionPlan, catalog: StatisticsCatalog, *,
                  output_attributes: Optional[Iterable[object]] = None
                  ) -> AnnotatedPlan:
    """Annotate an already-rooted structure plan without changing its rooting.

    The annotation's root candidates are pinned to the plan's current
    rooting, so only the sibling semijoin order and the child fold order
    adapt — the path used when a caller supplies a pre-compiled plan (e.g.
    the quotient plan a cyclic plan embeds).  Use
    :meth:`QueryPlanner.annotate` when the rooting itself should be chosen
    from the catalog.
    """
    span = current_tracer().span("annotate")
    with span:
        roots = structure.rooted.roots
        annotation = annotate_tree(structure.join_tree, catalog,
                                   output_attributes=output_attributes,
                                   candidate_roots=[roots[0] if roots else None])
        reducer = structure.reducer.with_cost_order(annotation.reduced_estimates)
        if span.is_recording:
            span.set("vertices", len(structure.vertices))
            span.set("pinned_root", True)
        return AnnotatedPlan(structure=structure, catalog=catalog,
                             annotation=annotation, reducer=reducer)


@dataclass(frozen=True)
class PlanCacheInfo:
    """Hit/miss/size counters of a planner's LRU cache."""

    hits: int
    misses: int
    size: int
    capacity: int


class QueryPlanner:
    """Compiles and caches execution plans, LRU-evicted by schema fingerprint.

    One planner can serve many databases and queries; the module-level
    :data:`DEFAULT_PLANNER` is what the high-level entry points use, so a
    workload that poses repeated queries over one schema performs the GYO /
    join-tree analysis exactly once.

    The LRU itself is guarded by a lock, so concurrent ``plan_for`` /
    ``cyclic_plan_for`` calls from many serving threads never corrupt the
    underlying ``OrderedDict``.  Compilation happens *outside* the lock —
    two threads racing on the same cold schema may both compile the plan
    (plans are immutable and interchangeable; the last insert wins), which
    trades a little duplicate work for never blocking the cache on a slow
    join-tree construction.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("planner cache capacity must be at least 1")
        self._capacity = capacity
        # Keys are (fingerprint, root) for acyclic plans and
        # (_CYCLIC_KIND, fingerprint) for cyclic ones — one LRU serves both.
        self._cache: "OrderedDict[Tuple[object, ...], object]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._lock = threading.RLock()

    @property
    def capacity(self) -> int:
        """The maximum number of cached plans."""
        return self._capacity

    def _cache_get(self, key: Tuple[object, ...]) -> Optional[object]:
        """LRU lookup with hit/miss accounting (``None`` counts as a miss)."""
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self._hits += 1
                return cached
            self._misses += 1
            return None

    def _cache_put(self, key: Tuple[object, ...], plan: object) -> None:
        """Insert a freshly compiled plan, evicting the least recently used."""
        with self._lock:
            self._cache[key] = plan
            if len(self._cache) > self._capacity:
                self._cache.popitem(last=False)

    def plan_for(self, hypergraph: Union[Hypergraph, Database], *,
                 root: Optional[Edge] = None,
                 catalog: Optional[StatisticsCatalog] = None,
                 output_attributes: Optional[Iterable[object]] = None
                 ) -> Union[ExecutionPlan, "AnnotatedPlan"]:
        """The execution plan for ``hypergraph`` (compiled or from cache).

        Passing a :class:`~repro.relational.database.Database` (or any
        hypergraph together with a ``catalog``) composes the two planning
        phases and returns an :class:`AnnotatedPlan`: the fingerprint-cached
        structure plan plus a cost annotation computed from the database's
        statistics catalog — the adaptive entry point.  Without a catalog the
        data-independent :class:`ExecutionPlan` is returned as before.

        Raises :class:`CyclicHypergraphError` when the hypergraph admits no
        join tree — cyclic schemas have no full reducer, so the engine cannot
        plan them (callers dispatch to :meth:`cyclic_plan_for` instead).
        """
        if isinstance(hypergraph, Database):
            database = hypergraph
            if catalog is None:
                catalog = database.statistics_catalog()
            hypergraph = database.schema.to_hypergraph()
        if catalog is not None:
            return self.annotate(hypergraph, catalog, root=root,
                                 output_attributes=output_attributes)
        key = (schema_fingerprint(hypergraph), root)
        cached = self._cache_get(key)
        if cached is not None:
            return cached
        tree = build_join_tree(hypergraph)
        if tree is None:
            raise CyclicHypergraphError(
                "the schema's hypergraph is cyclic: no join tree, hence no "
                "full reducer — use the cyclic subsystem (or the naive plan)")
        reducer = FullReducer.from_join_tree(tree, root)
        plan = ExecutionPlan(fingerprint=key[0], join_tree=tree,
                             rooted=reducer.rooted, reducer=reducer, root=root)
        self._cache_put(key, plan)
        return plan

    def plan_for_schema(self, schema: DatabaseSchema, *, root: Optional[Edge] = None
                        ) -> ExecutionPlan:
        """The execution plan for a database schema (via its hypergraph)."""
        return self.plan_for(schema.to_hypergraph(), root=root)

    def annotate(self, hypergraph: Hypergraph, catalog: StatisticsCatalog, *,
                 output_attributes: Optional[Iterable[object]] = None,
                 root: Optional[Edge] = None) -> AnnotatedPlan:
        """Compose the cached structure plan with a fresh cost annotation.

        The annotation may pick a different root than the default structure
        plan (it simulates every candidate rooting against the catalog);
        re-rooted structures are ordinary ``(fingerprint, root)`` cache
        entries, so adapting never invalidates or bypasses the LRU.  An
        explicit ``root`` pins the rooting and only adapts the orders.
        """
        base = self.plan_for(hypergraph, root=root)
        if root is not None:
            return annotate_plan(base, catalog, output_attributes=output_attributes)
        span = current_tracer().span("annotate")
        with span:
            annotation = annotate_tree(base.join_tree, catalog,
                                       output_attributes=output_attributes)
            structure = base if annotation.root is None \
                else self.plan_for(hypergraph, root=annotation.root)
            reducer = structure.reducer.with_cost_order(annotation.reduced_estimates)
            if span.is_recording:
                span.set("vertices", len(structure.vertices))
                span.set("pinned_root", False)
                span.set("rerooted", annotation.root is not None)
            return AnnotatedPlan(structure=structure, catalog=catalog,
                                 annotation=annotation, reducer=reducer)

    def cyclic_plan_for(self, hypergraph: Hypergraph, *,
                        catalog: Optional[StatisticsCatalog] = None
                        ) -> "CyclicExecutionPlan":
        """The cyclic execution plan for ``hypergraph`` (compiled or from cache).

        Works for acyclic hypergraphs too (the cover is trivially all
        singletons).  The plan — cover, validated acyclic quotient, and the
        quotient's embedded :class:`ExecutionPlan` — is cached in the same
        LRU as the acyclic plans under an extended fingerprint key, so cover
        search runs once per schema.

        With a ``catalog``, the cached plan's candidate covers are re-scored
        by estimated cluster-join cardinality (the data-dependent tie-break
        of :func:`repro.engine.cyclic.covers.cover_score`); when a different
        candidate wins, a per-database plan is assembled around it — its
        quotient's inner plan still comes from the fingerprint cache, and the
        static plan stays cached untouched.
        """
        from .cyclic.covers import cover_score, enumerate_covers
        from .cyclic.plans import CyclicExecutionPlan
        from .cyclic.quotient import AcyclicQuotient

        fingerprint = schema_fingerprint(hypergraph)
        key = (_CYCLIC_KIND, fingerprint)
        plan = self._cache_get(key)
        if plan is None:
            candidates = enumerate_covers(hypergraph)
            cover = min(candidates, key=cover_score)
            quotient = AcyclicQuotient.build(hypergraph, cover)
            inner = self.plan_for(quotient.hypergraph)
            plan = CyclicExecutionPlan(fingerprint=fingerprint, cover=cover,
                                       quotient=quotient, inner=inner,
                                       candidates=tuple(candidates))
            self._cache_put(key, plan)
        if catalog is None:
            return plan
        candidates = plan.candidates or (plan.cover,)
        best = min(candidates, key=lambda cover: cover_score(cover, catalog=catalog))
        if best == plan.cover:
            return plan
        # The adaptive variant is keyed by the *chosen cover*, not by the
        # catalog: any catalog picking the same cover gets the same plan, so
        # repeated adaptive queries over one schema build the quotient once.
        variant_key = (_CYCLIC_KIND, fingerprint, best)
        variant = self._cache_get(variant_key)
        if variant is not None:
            return variant
        quotient = AcyclicQuotient.build(hypergraph, best)
        inner = self.plan_for(quotient.hypergraph)
        variant = CyclicExecutionPlan(fingerprint=fingerprint, cover=best,
                                      quotient=quotient, inner=inner,
                                      candidates=plan.candidates)
        self._cache_put(variant_key, variant)
        return variant

    def dump_fingerprints(self) -> str:
        """The cached plans' fingerprints as a JSON document (LRU → MRU order).

        The dump carries no compiled plans — plans are data-independent and
        cheap to rebuild relative to a service's lifetime — only what is
        needed to re-plan: each entry's kind (``acyclic``/``cyclic``), its
        edge lists and, for acyclic plans, the requested root.  Feed the
        document to :meth:`warm_up` after a restart to pre-compile the whole
        workload.  Nodes must be JSON-serialisable (strings, numbers,
        booleans, or tuples of those — tuples are restored on the way back
        in); exotic node types raise ``TypeError`` here rather than
        producing a dump that cannot round-trip.
        """
        entries: List[Dict[str, object]] = []
        with self._lock:
            keys = list(self._cache)
        for key in keys:
            if key[0] == _CYCLIC_KIND:
                if len(key) == 3:
                    # Catalog-chosen cover variants are derived per database;
                    # warming the base cyclic entry is enough to rebuild them.
                    continue
                kind, fingerprint, root = _CYCLIC_KIND, key[1], None
            else:
                kind = "acyclic"
                fingerprint, root = key
            entries.append({
                "kind": kind,
                "edges": [list(edge) for edge in fingerprint],
                "root": sorted_nodes(root) if root is not None else None,
            })
        return json.dumps(entries)

    def warm_up(self, source: Union[str, Iterable[object]]) -> int:
        """Pre-compile plans for a known workload; return how many were newly compiled.

        ``source`` is a JSON document from :meth:`dump_fingerprints` (or its
        parsed entry list), or any iterable mixing such entries with
        :class:`Hypergraph` / :class:`DatabaseSchema` objects.  Entries
        already cached are refreshed, not recompiled, so warm-up is
        idempotent.  The count includes the quotient plans cyclic entries
        compile internally; a planner whose ``capacity`` is smaller than the
        workload evicts the earliest warmed plans again, so size the planner
        to the dump before warming.
        """
        from ..core.acyclicity import is_acyclic

        if isinstance(source, str):
            entries: Iterable[object] = json.loads(source)
        else:
            entries = source
        misses_before = self._misses
        for entry in entries:
            if isinstance(entry, DatabaseSchema):
                entry = entry.to_hypergraph()
            if isinstance(entry, Hypergraph):
                if is_acyclic(entry):
                    self.plan_for(entry)
                else:
                    self.cyclic_plan_for(entry)
                continue
            if not isinstance(entry, dict):
                raise ValueError(f"cannot warm up from entry {entry!r}; expected a "
                                 "dump_fingerprints entry, Hypergraph or DatabaseSchema")
            hypergraph = Hypergraph(
                frozenset(_node_from_json(node) for node in edge)
                for edge in entry["edges"])
            if entry.get("kind") == _CYCLIC_KIND:
                self.cyclic_plan_for(hypergraph)
            else:
                root = entry.get("root")
                self.plan_for(
                    hypergraph,
                    root=frozenset(_node_from_json(node) for node in root)
                    if root is not None else None)
        return self._misses - misses_before

    def save_cache(self, path: Union[str, "os.PathLike[str]"]) -> int:
        """Persist :meth:`dump_fingerprints` to a JSON file; return the entry count.

        The write goes through a same-directory temp file and ``os.replace``,
        so a service crashing mid-save never truncates the previous dump.
        """
        document = self.dump_fingerprints()
        count = len(json.loads(document))
        path = os.fspath(path)
        temp_path = f"{path}.tmp"
        with open(temp_path, "w", encoding="utf-8") as handle:
            handle.write(document)
        os.replace(temp_path, path)
        return count

    def load_cache(self, path: Union[str, "os.PathLike[str]"], *,
                   missing_ok: bool = False) -> int:
        """Warm the planner from a :meth:`save_cache` file; return plans compiled.

        Loading on service start makes every known workload schema a plan
        cache hit from the first query — zero re-planning on warm start.
        ``missing_ok=True`` turns a missing file into a no-op (first boot).
        """
        path = os.fspath(path)
        if missing_ok and not os.path.exists(path):
            return 0
        with open(path, "r", encoding="utf-8") as handle:
            document = handle.read()
        return self.warm_up(document)

    def cache_info(self) -> PlanCacheInfo:
        """Current hit/miss/size counters."""
        with self._lock:
            return PlanCacheInfo(hits=self._hits, misses=self._misses,
                                 size=len(self._cache), capacity=self._capacity)

    def clear(self) -> None:
        """Drop every cached plan and reset the counters."""
        with self._lock:
            self._cache.clear()
            self._hits = 0
            self._misses = 0


DEFAULT_PLANNER = QueryPlanner()
"""The shared planner used by :func:`repro.engine.yannakakis.evaluate` by default."""
