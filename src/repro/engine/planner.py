"""Plan objects, cost/statistics accounting and the LRU plan cache.

Deriving an execution plan for an acyclic schema means running GYO / the
maximum-weight-spanning-tree construction, validating the running-intersection
property, rooting the tree and compiling the full reducer — all of which
depend only on the schema's *hypergraph*, not on the stored tuples.  The
planner therefore caches compiled :class:`ExecutionPlan` objects in an LRU
keyed by a canonical **schema fingerprint**, so repeated queries over the
same hypergraph skip the whole analysis.

:class:`EngineStatistics` absorbs the tuple-count accounting of
:class:`~repro.relational.join_plans.JoinStatistics` (so benchmark tables can
compare engines and naive plans side by side) and extends it with semijoin,
reduction and cache counters.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Tuple, Union

from ..core.hypergraph import Edge, Hypergraph
from ..core.join_tree import JoinTree, RootedJoinTree, build_join_tree
from ..core.nodes import node_sort_key, sorted_nodes
from ..exceptions import CyclicHypergraphError
from ..relational.join_plans import JoinStatistics
from ..relational.schema import DatabaseSchema
from .reducer import FullReducer

__all__ = [
    "SchemaFingerprint",
    "schema_fingerprint",
    "EngineStatistics",
    "ExecutionPlan",
    "PlanCacheInfo",
    "QueryPlanner",
    "DEFAULT_PLANNER",
]

SchemaFingerprint = Tuple[Tuple[object, ...], ...]


def schema_fingerprint(source: Union[Hypergraph, DatabaseSchema, Iterable[Iterable[object]]]
                       ) -> SchemaFingerprint:
    """A canonical, hashable fingerprint of a hypergraph / database schema.

    The fingerprint is the sorted tuple of sorted edges, so it is invariant
    under edge order, duplicate edges and attribute order — any two schemas
    with the same objects over the same attributes plan identically.
    """
    if isinstance(source, DatabaseSchema):
        edges: Iterable[Iterable[object]] = (r.attribute_set for r in source)
    elif isinstance(source, Hypergraph):
        edges = source.edges
    else:
        edges = source
    canonical = sorted({tuple(sorted_nodes(edge)) for edge in edges},
                       key=lambda edge: tuple(node_sort_key(node) for node in edge))
    return tuple(canonical)


def fingerprint_digest(fingerprint: SchemaFingerprint) -> str:
    """A short hex digest of a fingerprint, for logs and plan descriptions."""
    return hashlib.sha256(repr(fingerprint).encode("utf-8")).hexdigest()[:12]


@dataclass
class EngineStatistics(JoinStatistics):
    """Join-plan accounting extended with the engine's semijoin/caching counters.

    ``intermediate_sizes`` (inherited) records the materialised size after
    every bottom-up join step *with projection already fused in* — the number
    the acyclicity story bounds.  ``reduced_sizes`` are the per-vertex sizes
    after the full-reducer passes.
    """

    semijoin_steps: int = 0
    rows_removed_by_reduction: int = 0
    reduced_sizes: Tuple[int, ...] = ()
    plan_cache_hit: bool = False
    index_cache_hits: int = 0
    index_cache_misses: int = 0

    @property
    def max_reduced_input(self) -> int:
        """The largest relation after reduction (0 when nothing was reduced)."""
        return max(self.reduced_sizes, default=0)

    @property
    def reduction_ratio(self) -> float:
        """Fraction of stored tuples removed as dangling by the reducer."""
        total = sum(self.input_sizes)
        return (self.rows_removed_by_reduction / total) if total else 0.0

    def describe(self) -> str:
        """A one-line summary aligned with ``JoinStatistics.describe``."""
        base = super().describe()
        return (f"{base} semijoins={self.semijoin_steps} "
                f"removed={self.rows_removed_by_reduction} "
                f"reduced={list(self.reduced_sizes)} "
                f"plan_cache={'hit' if self.plan_cache_hit else 'miss'}")


@dataclass(frozen=True)
class ExecutionPlan:
    """A compiled plan for one schema fingerprint: join tree, rooting, reducer.

    Plans are data-independent; the same plan evaluates every database whose
    schema has the plan's fingerprint.
    """

    fingerprint: SchemaFingerprint
    join_tree: JoinTree
    rooted: RootedJoinTree
    reducer: FullReducer
    root: Optional[Edge] = None

    @property
    def vertices(self) -> Tuple[Edge, ...]:
        """The join-tree vertices (hypergraph edges), in tree-vertex order."""
        return self.join_tree.vertices

    def estimated_semijoin_steps(self) -> int:
        """How many semijoin steps one reducer run performs."""
        return len(self.reducer)

    def describe(self) -> str:
        """A multi-line plan rendering: fingerprint, tree and reducer program."""
        lines = [f"ExecutionPlan {fingerprint_digest(self.fingerprint)} "
                 f"({len(self.vertices)} vertices, {len(self.reducer)} semijoin steps)",
                 self.join_tree.describe(),
                 self.reducer.describe()]
        return "\n".join(lines)


@dataclass(frozen=True)
class PlanCacheInfo:
    """Hit/miss/size counters of a planner's LRU cache."""

    hits: int
    misses: int
    size: int
    capacity: int


class QueryPlanner:
    """Compiles and caches execution plans, LRU-evicted by schema fingerprint.

    One planner can serve many databases and queries; the module-level
    :data:`DEFAULT_PLANNER` is what the high-level entry points use, so a
    workload that poses repeated queries over one schema performs the GYO /
    join-tree analysis exactly once.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("planner cache capacity must be at least 1")
        self._capacity = capacity
        self._cache: "OrderedDict[Tuple[SchemaFingerprint, Optional[Edge]], ExecutionPlan]" = \
            OrderedDict()
        self._hits = 0
        self._misses = 0

    @property
    def capacity(self) -> int:
        """The maximum number of cached plans."""
        return self._capacity

    def plan_for(self, hypergraph: Hypergraph, *, root: Optional[Edge] = None
                 ) -> ExecutionPlan:
        """The execution plan for ``hypergraph`` (compiled or from cache).

        Raises :class:`CyclicHypergraphError` when the hypergraph admits no
        join tree — cyclic schemas have no full reducer, so the engine cannot
        plan them (callers fall back to naive evaluation).
        """
        key = (schema_fingerprint(hypergraph), root)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self._hits += 1
            return cached
        self._misses += 1
        tree = build_join_tree(hypergraph)
        if tree is None:
            raise CyclicHypergraphError(
                "the schema's hypergraph is cyclic: no join tree, hence no "
                "full reducer — use the naive plan (or a hypertree heuristic)")
        reducer = FullReducer.from_join_tree(tree, root)
        plan = ExecutionPlan(fingerprint=key[0], join_tree=tree,
                             rooted=reducer.rooted, reducer=reducer, root=root)
        self._cache[key] = plan
        if len(self._cache) > self._capacity:
            self._cache.popitem(last=False)
        return plan

    def plan_for_schema(self, schema: DatabaseSchema, *, root: Optional[Edge] = None
                        ) -> ExecutionPlan:
        """The execution plan for a database schema (via its hypergraph)."""
        return self.plan_for(schema.to_hypergraph(), root=root)

    def cache_info(self) -> PlanCacheInfo:
        """Current hit/miss/size counters."""
        return PlanCacheInfo(hits=self._hits, misses=self._misses,
                             size=len(self._cache), capacity=self._capacity)

    def clear(self) -> None:
        """Drop every cached plan and reset the counters."""
        self._cache.clear()
        self._hits = 0
        self._misses = 0


DEFAULT_PLANNER = QueryPlanner()
"""The shared planner used by :func:`repro.engine.yannakakis.evaluate` by default."""
