"""The mode-agnostic bottom-up join fold of Yannakakis' algorithm.

Phase 3 of the evaluator — fold children into parents leaf-to-root with the
projection onto (requested outputs ∪ live separators) fused into every join,
then join the tree roots — is identical for the row and the columnar
physical layers; only the three physical operations differ.  Keeping the
keep-set computation in one place is what guarantees the two layers stay
byte-identical: the fused-projection logic is the subtlest part of the
engine, and a one-sided edit would silently break the differential-testing
contract.

The fold is parameterised exactly like
:meth:`FullReducer._run_physical <repro.engine.reducer.FullReducer>`:

* ``join(left, right, keep)`` — natural join with the projection onto
  ``keep`` fused in (``keep is None`` keeps everything);
* ``project(item, keep)`` — set-semantics projection onto ``keep``;
* ``attributes_of(item)`` — the item's visible attribute set.

Items only need ``len`` beyond that, so :class:`~repro.relational.relation.Relation`
and :class:`~repro.engine.columnar.ColumnBlock` both fit.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..core.hypergraph import Edge
from ..core.join_tree import RootedJoinTree
from ..telemetry.tracing import current_tracer

__all__ = ["fold_join_tree"]


def fold_join_tree(rooted: RootedJoinTree, reduced: Mapping[Edge, object],
                   wanted: Optional[FrozenSet], *,
                   order_children: Callable[[Edge, Sequence[Edge]], Sequence[Edge]],
                   join: Callable, project: Callable, attributes_of: Callable
                   ) -> Tuple[object, List[int]]:
    """Fold the reduced vertex map bottom-up; return (result, intermediate sizes).

    A vertex's partial join keeps only the requested outputs visible in its
    subtree plus the separator to its parent; while its children are being
    folded in, the separators to the *not yet joined* children stay live
    too.  ``order_children`` injects the cost annotation's fold order (the
    identity for static plans).
    """
    span = current_tracer().span("fold")
    with span:
        result, intermediates = _fold_join_tree(
            rooted, reduced, wanted, order_children=order_children,
            join=join, project=project, attributes_of=attributes_of)
        if span.is_recording:
            span.set("intermediates", list(intermediates))
            span.set("output_rows", len(result))
        return result, intermediates


def _fold_join_tree(rooted: RootedJoinTree, reduced: Mapping[Edge, object],
                    wanted: Optional[FrozenSet], *,
                    order_children: Callable[[Edge, Sequence[Edge]], Sequence[Edge]],
                    join: Callable, project: Callable, attributes_of: Callable
                    ) -> Tuple[object, List[int]]:
    """The untraced fold body (see :func:`fold_join_tree`)."""
    intermediates: List[int] = []
    partial: Dict[Edge, object] = {}
    for vertex, parent in rooted.leaf_to_root():
        current = reduced[vertex]
        children = order_children(vertex, rooted.children_of(vertex))
        final_keep: Optional[FrozenSet] = None
        if wanted is not None:
            subtree_attributes = set(vertex)
            for child in children:
                subtree_attributes.update(attributes_of(partial[child]))
            final_keep = frozenset(subtree_attributes) & wanted
            if parent is not None:
                final_keep |= frozenset(vertex) & frozenset(parent)
        child_separators = [frozenset(vertex) & frozenset(child) for child in children]
        for index, child in enumerate(children):
            keep: Optional[FrozenSet] = None
            if final_keep is not None:
                keep = final_keep.union(*child_separators[index + 1:]) \
                    if index + 1 < len(children) else final_keep
            current = join(current, partial[child], keep)
            intermediates.append(len(current))
        if final_keep is not None and final_keep != attributes_of(current):
            current = project(current, final_keep)
        partial[vertex] = current

    roots = rooted.roots
    result = partial[roots[0]]
    for other_root in roots[1:]:
        keep = None
        if wanted is not None:
            keep = (frozenset(attributes_of(result))
                    | frozenset(attributes_of(partial[other_root]))) & wanted
        result = join(result, partial[other_root], keep)
        intermediates.append(len(result))
    if wanted is not None and wanted & attributes_of(result) != attributes_of(result):
        result = project(result, wanted)
    return result, intermediates
