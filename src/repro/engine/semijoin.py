"""Indexed semijoin, anti-semijoin and natural-join operators.

These are the engine's physical operators.  They compute the same relations
as :func:`repro.relational.algebra.semijoin` / ``antijoin`` / ``natural_join``
but probe a cached :class:`~repro.engine.indexes.HashIndex` on the separator
attributes and build results through the validation-free
:meth:`Relation.from_valid_rows` constructor, so a full-reducer pass touches
every stored tuple O(1) times instead of rescanning relations.

With no shared attributes the operators degenerate exactly as the logical
ones do: the semijoin keeps everything iff the right side is non-empty, and
the join is the Cartesian product.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.hypergraph import Edge
from ..core.nodes import sorted_nodes
from ..exceptions import UnknownAttributeError
from ..relational.relation import Relation, Row
from ..relational.schema import Attribute, RelationSchema
from ..telemetry.tracing import current_tracer
from .indexes import HashIndex, index_for

__all__ = ["shared_attributes", "semijoin_indexed", "antijoin_indexed",
           "natural_join_indexed", "merge_relations_by_scheme"]


def shared_attributes(left: Relation, right: Relation) -> Tuple[Attribute, ...]:
    """The separator: attributes common to both schemas, in canonical order."""
    return tuple(sorted_nodes(left.schema.attribute_set & right.schema.attribute_set))


def merge_relations_by_scheme(relations: Sequence[Relation]) -> Dict[Edge, Relation]:
    """One relation per distinct scheme, in first-seen order per scheme.

    Relations over an identical scheme map to the same hypergraph edge; they
    are intersected (a natural join on an identical scheme), so tree walks
    and cluster materialisation see exactly one relation per edge.  Shared by
    the acyclic evaluator's vertex mapping and the cyclic executor's cluster
    phase.
    """
    grouped: Dict[Edge, Relation] = {}
    for relation in relations:
        edge = relation.schema.attribute_set
        existing = grouped.get(edge)
        if existing is None:
            grouped[edge] = relation
        else:
            grouped[edge] = natural_join_indexed(existing, relation, name=existing.name)
    return grouped


def _separator(left: Relation, right: Relation,
               on: Optional[Iterable[Attribute]]) -> Tuple[Attribute, ...]:
    """The effective separator; an ``on`` override must be in both schemas."""
    if on is None:
        return shared_attributes(left, right)
    separator = tuple(on)
    for attribute in separator:
        if not left.schema.has_attribute(attribute) \
                or not right.schema.has_attribute(attribute):
            raise UnknownAttributeError(attribute)
    return separator


def semijoin_indexed(left: Relation, right: Relation,
                     on: Optional[Iterable[Attribute]] = None) -> Relation:
    """``left ⋉ right`` via a hash index on the separator.

    ``on`` overrides the separator (it must be a subset of both schemas);
    the result keeps ``left``'s schema.  When nothing is filtered out,
    ``left`` itself is returned so reducer fixpoints allocate nothing.
    """
    span = current_tracer().span("kernel:semijoin")
    with span:
        separator = _separator(left, right, on)
        if not separator:
            result = left if len(right) \
                else Relation.from_valid_rows(left.schema, frozenset())
        else:
            index = index_for(right, separator)
            keep = [row for row in left.rows if index.key_of(row) in index]
            result = left if len(keep) == len(left) \
                else Relation.from_valid_rows(left.schema, keep)
        if span.is_recording:
            span.set("mode", "row")
            span.set("left_rows", len(left))
            span.set("right_rows", len(right))
            span.set("output_rows", len(result))
        return result


def antijoin_indexed(left: Relation, right: Relation,
                     on: Optional[Iterable[Attribute]] = None) -> Relation:
    """``left ▷ right`` — the rows of ``left`` with no join partner in ``right``."""
    span = current_tracer().span("kernel:antijoin")
    with span:
        separator = _separator(left, right, on)
        if not separator:
            result = Relation.from_valid_rows(left.schema, frozenset()) \
                if len(right) else left
        else:
            index = index_for(right, separator)
            keep = [row for row in left.rows if index.key_of(row) not in index]
            result = left if len(keep) == len(left) \
                else Relation.from_valid_rows(left.schema, keep)
        if span.is_recording:
            span.set("mode", "row")
            span.set("left_rows", len(left))
            span.set("right_rows", len(right))
            span.set("output_rows", len(result))
        return result


def natural_join_indexed(left: Relation, right: Relation, *,
                         project_onto: Optional[FrozenSet[Attribute]] = None,
                         name: Optional[str] = None) -> Relation:
    """``left ⋈ right`` probing a cached index, with fused projection.

    ``project_onto`` (when given) is applied to every merged row *before* it
    is materialised, so the intermediate never holds attributes the plan has
    already determined to be dead — the projection-fusion that keeps
    Yannakakis' bottom-up phase inside its output-size bound.
    """
    span = current_tracer().span("kernel:join")
    with span:
        joined_attributes = list(left.schema.attributes)
        for attribute in right.schema.attributes:
            if attribute not in left.schema.attribute_set:
                joined_attributes.append(attribute)
        if project_onto is not None:
            kept = [a for a in joined_attributes if a in project_onto]
        else:
            kept = joined_attributes
        schema = RelationSchema.of(name or f"({left.name} ⋈ {right.name})", kept)
        project_needed = len(kept) != len(joined_attributes)

        separator = shared_attributes(left, right)
        rows: Set[Row] = set()
        if not separator:
            for left_row in left.rows:
                for right_row in right.rows:
                    merged = left_row.merge(right_row)
                    if merged is not None:
                        rows.add(merged.project(kept) if project_needed else merged)
        else:
            build, probe = (left, right) if len(left) <= len(right) else (right, left)
            index = index_for(build, separator)
            for row in probe.rows:
                for partner in index.matches(row):
                    merged = row.merge(partner)
                    if merged is not None:
                        rows.add(merged.project(kept) if project_needed else merged)
        result = Relation.from_valid_rows(schema, rows)
        if span.is_recording:
            span.set("mode", "row")
            span.set("left_rows", len(left))
            span.set("right_rows", len(right))
            span.set("output_rows", len(result))
        return result
