"""Hash indexes over relation columns.

A :class:`HashIndex` partitions a relation's rows by their values on a tuple
of key attributes — exactly the structure every semijoin, anti-semijoin and
hash join in the engine probes.  Because :class:`~repro.relational.relation.Relation`
is immutable, indexes are safe to cache per relation: :func:`index_for` keeps
a weak per-relation cache so that the two reducer passes, the bottom-up join
phase and repeated queries over the same database all reuse one build.
"""

from __future__ import annotations

import weakref
from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.nodes import sorted_nodes
from ..exceptions import UnknownAttributeError
from ..relational.relation import Relation, Row
from ..relational.schema import Attribute

__all__ = ["HashIndex", "index_for", "index_cache_info", "clear_index_cache"]

IndexKey = Tuple[Any, ...]


class HashIndex:
    """An immutable hash index: rows of one relation bucketed by key-attribute values."""

    __slots__ = ("_attributes", "_buckets", "_size")

    def __init__(self, rows: Iterable[Row], attributes: Sequence[Attribute]) -> None:
        self._attributes: Tuple[Attribute, ...] = tuple(attributes)
        buckets: Dict[IndexKey, List[Row]] = {}
        size = 0
        for row in rows:
            key = tuple(row[attribute] for attribute in self._attributes)
            buckets.setdefault(key, []).append(row)
            size += 1
        self._buckets: Dict[IndexKey, Tuple[Row, ...]] = {
            key: tuple(bucket) for key, bucket in buckets.items()
        }
        self._size = size

    @classmethod
    def build(cls, relation: Relation, attributes: Iterable[Attribute]) -> "HashIndex":
        """Index ``relation`` on ``attributes`` (each must belong to its schema)."""
        wanted = tuple(attributes)
        for attribute in wanted:
            if not relation.schema.has_attribute(attribute):
                raise UnknownAttributeError(attribute)
        return cls(relation.rows, wanted)

    @classmethod
    def build_columnar(cls, relation: Relation,
                       attributes: Iterable[Attribute]) -> "HashIndex":
        """The columnar build path: bucket rows by the block's encoded key ids.

        Instead of forming a key tuple per row, this groups the relation's
        (cached) :class:`~repro.engine.columnar.ColumnBlock` positions by its
        grouped key encoding — the per-storage key array is computed once
        and shared with every block kernel and every other index over the
        same separator, so building a second index over a different attribute
        subset of an already-encoded relation re-hashes nothing.  The
        resulting index is indistinguishable from :meth:`build`'s.

        This path is strictly opt-in: :func:`index_for` (the row engine's
        cache) always uses :meth:`build`, keeping the reference
        implementation independent of the columnar encoding it is
        differentially tested against.
        """
        from .columnar import block_for

        wanted = tuple(attributes)
        for attribute in wanted:
            if not relation.schema.has_attribute(attribute):
                raise UnknownAttributeError(attribute)
        block = block_for(relation)
        index = cls.__new__(cls)
        index._attributes = wanted
        if not wanted:
            index._buckets = {(): tuple(block.source_rows or ())} if len(block) else {}
            index._size = len(block)
            return index
        groups = block.key_groups(tuple(sorted_nodes(wanted)))
        rows = block.source_rows
        # Columns hold interned ids; bucket keys must be the original values,
        # decoded once per distinct key (not per row) via the interner.
        decode = block.interner.values.__getitem__
        columns = [block.column(attribute) for attribute in wanted]
        buckets: Dict[IndexKey, Tuple[Row, ...]] = {}
        for positions in groups.values():
            first = positions[0]
            key = tuple(decode(column[first]) for column in columns)
            buckets[key] = tuple(rows[position] for position in positions)
        index._buckets = buckets
        index._size = len(block)
        return index

    # ------------------------------------------------------------------ #
    @property
    def attributes(self) -> Tuple[Attribute, ...]:
        """The key attributes, in the order keys are formed."""
        return self._attributes

    def key_of(self, row: Row) -> IndexKey:
        """The index key of a row (the row may come from *any* relation that has the key attributes)."""
        return tuple(row[attribute] for attribute in self._attributes)

    def lookup(self, key: IndexKey) -> Tuple[Row, ...]:
        """All indexed rows with the given key (empty tuple when none)."""
        return self._buckets.get(key, ())

    def matches(self, row: Row) -> Tuple[Row, ...]:
        """All indexed rows agreeing with ``row`` on the key attributes."""
        return self._buckets.get(self.key_of(row), ())

    def __contains__(self, key: object) -> bool:
        return key in self._buckets

    def keys(self) -> FrozenSet[IndexKey]:
        """The distinct keys present in the index."""
        return frozenset(self._buckets)

    def __iter__(self) -> Iterator[IndexKey]:
        return iter(self._buckets)

    def __len__(self) -> int:
        """The number of distinct keys (not rows)."""
        return len(self._buckets)

    @property
    def row_count(self) -> int:
        """The number of indexed rows."""
        return self._size

    def __repr__(self) -> str:
        names = ", ".join(str(a) for a in self._attributes)
        return f"HashIndex(({names}), {len(self._buckets)} keys, {self._size} rows)"


# --------------------------------------------------------------------------- #
# Per-relation index cache
# --------------------------------------------------------------------------- #
# Relations are immutable, so an index on (relation, key attributes) never
# goes stale; the weak dictionary lets relations (and their indexes) be
# reclaimed as soon as the caller drops them.
_INDEX_CACHE: "weakref.WeakKeyDictionary[Relation, Dict[Tuple[Attribute, ...], HashIndex]]" = \
    weakref.WeakKeyDictionary()
_CACHE_HITS = 0
_CACHE_MISSES = 0


def index_for(relation: Relation, attributes: Iterable[Attribute]) -> HashIndex:
    """A (cached) hash index of ``relation`` on ``attributes``.

    The attribute order is canonicalised, so requests for ``(A, B)`` and
    ``(B, A)`` share one index.
    """
    global _CACHE_HITS, _CACHE_MISSES
    key = tuple(sorted_nodes(attributes))
    per_relation = _INDEX_CACHE.get(relation)
    if per_relation is not None:
        cached = per_relation.get(key)
        if cached is not None:
            _CACHE_HITS += 1
            return cached
    else:
        per_relation = _INDEX_CACHE.setdefault(relation, {})
    _CACHE_MISSES += 1
    # Always the row build, never the columnar one: the row engine is the
    # *reference implementation* the columnar layer is differentially tested
    # against, so its indexes must not be derived from the very encoding
    # under test.  Callers that already hold a block and want to share its
    # encoding opt in explicitly via HashIndex.build_columnar.
    index = HashIndex.build(relation, key)
    per_relation[key] = index
    return index


def index_cache_info() -> Dict[str, int]:
    """Cumulative hit/miss counters of the per-relation index cache."""
    return {"hits": _CACHE_HITS, "misses": _CACHE_MISSES,
            "relations": len(_INDEX_CACHE)}


def clear_index_cache() -> None:
    """Drop all cached indexes and reset the counters (used by tests/benchmarks)."""
    global _CACHE_HITS, _CACHE_MISSES
    _INDEX_CACHE.clear()
    _CACHE_HITS = 0
    _CACHE_MISSES = 0
