"""Batched semijoin / antijoin / natural-join kernels over typed column blocks.

These are the columnar physical operators — the whole-block counterparts of
:mod:`repro.engine.semijoin`.  They compute exactly the same relations (same
rows, same attribute order rules) but move whole typed position vectors per
call through the active :mod:`column-buffer backend <repro.engine.columnar.buffers>`
instead of probing rows one at a time:

* a **semijoin** compares the two blocks' cached key-id sets first — a
  subset means fixpoint (return ``left`` itself), disjoint means empty —
  and only then filters the left position vector by batched membership of
  its id codes in the right side's prepared key structure;
* a **natural join** probes the smaller side's cached join table with the
  other side's whole code array, then materialises the output by batched
  positional gathers — no intermediate ``Row`` objects and no per-match
  Python tuples exist at any point;
* **fused projection** drops dead columns before the gather and
  deduplicates positionally, mirroring the row operators' set semantics.

Identity contracts match the row operators: a semijoin/antijoin that filters
nothing returns the *left block itself*, so reducer fixpoints allocate
nothing and ``is``-based stability checks work unchanged.  Every kernel span
records the active backend and its batch size.
"""

from __future__ import annotations

from array import array
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from ...core.hypergraph import Edge
from ...core.nodes import sorted_nodes
from ...exceptions import SchemaError, UnknownAttributeError
from ...relational.relation import Relation
from ...relational.schema import Attribute
from ...telemetry.tracing import current_tracer
from .block import ColumnBlock, block_for
from .buffers import active_column_backend

__all__ = [
    "shared_block_attributes",
    "semijoin_blocks",
    "antijoin_blocks",
    "natural_join_blocks",
    "intersect_blocks",
    "merge_blocks_by_scheme",
]


def shared_block_attributes(left: ColumnBlock, right: ColumnBlock) -> Tuple[Attribute, ...]:
    """The separator: attributes common to both blocks, in canonical order."""
    return tuple(sorted_nodes(left.attribute_set & right.attribute_set))


def _separator(left: ColumnBlock, right: ColumnBlock,
               on: Optional[Iterable[Attribute]]) -> Tuple[Attribute, ...]:
    """The effective separator, canonicalised so key dictionaries are shared.

    An ``on`` override must be a subset of both blocks' schemes.  Unlike the
    row operators the attribute order is always canonical here — the grouped
    key encoding is cached per attribute *tuple*, and key-set membership is
    order-invariant anyway.
    """
    if on is None:
        return shared_block_attributes(left, right)
    separator = tuple(sorted_nodes(on))
    for attribute in separator:
        if attribute not in left.attribute_set or attribute not in right.attribute_set:
            raise UnknownAttributeError(attribute)
    return separator


def _same_generation(left: ColumnBlock, right: ColumnBlock) -> None:
    """Reject id comparisons across interner generations (after a cache clear)."""
    if left.interner is not right.interner:
        raise SchemaError(
            "cannot combine column blocks encoded under different "
            "column-cache generations; re-encode after clear_column_caches()")


def semijoin_blocks(left: ColumnBlock, right: ColumnBlock,
                    on: Optional[Iterable[Attribute]] = None) -> ColumnBlock:
    """``left ⋉ right`` by batched key-id membership.

    Returns ``left`` itself when nothing is filtered out, exactly like
    :func:`~repro.engine.semijoin.semijoin_indexed`.  The cached key-id
    sets decide fixpoint (subset) and dead-end (disjoint) cases without
    touching a single position; only genuine partial overlaps run the
    backend's batched membership filter.
    """
    span = current_tracer().span("kernel:semijoin")
    with span:
        backend = active_column_backend()
        separator = _separator(left, right, on)
        if not separator:
            result = left if len(right) else left.empty()
        else:
            _same_generation(left, right)
            left_ids = left.key_code_set(separator)
            right_ids = right.key_code_set(separator)
            if left_ids <= right_ids:
                result = left
            elif left_ids.isdisjoint(right_ids):
                result = left.empty()
            else:
                keep = _filtered_selection(left, right, separator, backend,
                                           negate=False)
                result = left if len(keep) == len(left) else left.select(keep)
        if span.is_recording:
            span.set("mode", "columnar")
            span.set("backend", backend.name)
            span.set("batch", len(left))
            span.set("left_rows", len(left))
            span.set("right_rows", len(right))
            span.set("output_rows", len(result))
        return result


def _filtered_selection(left: ColumnBlock, right: ColumnBlock,
                        separator: Tuple[Attribute, ...], backend, *,
                        negate: bool) -> "array":
    """The (cached) kept-position vector of a partial-overlap (anti)semijoin.

    Keyed by both sides' storage identity and selection bytes, so the fresh
    but byte-identical selections a warm re-execution produces hit the vector
    filtered on the previous run instead of re-probing the key set.
    """
    key = ("semi", negate, backend.name, separator, left.selection_bytes(),
           right.storage_token(), right.selection_bytes())
    keep = left.derived_get(key)
    if keep is None:
        keep = left.derived_put(key, backend.filter_membership(
            left.key_codes(separator), left.positions,
            right.prepared_key_set(separator, backend), negate=negate))
    return keep


def antijoin_blocks(left: ColumnBlock, right: ColumnBlock,
                    on: Optional[Iterable[Attribute]] = None) -> ColumnBlock:
    """``left ▷ right`` — the selected rows of ``left`` with no partner in ``right``."""
    span = current_tracer().span("kernel:antijoin")
    with span:
        backend = active_column_backend()
        separator = _separator(left, right, on)
        if not separator:
            result = left.empty() if len(right) else left
        else:
            _same_generation(left, right)
            left_ids = left.key_code_set(separator)
            right_ids = right.key_code_set(separator)
            if left_ids.isdisjoint(right_ids):
                result = left
            elif left_ids <= right_ids:
                result = left.empty()
            else:
                keep = _filtered_selection(left, right, separator, backend,
                                           negate=True)
                result = left if len(keep) == len(left) else left.select(keep)
        if span.is_recording:
            span.set("mode", "columnar")
            span.set("backend", backend.name)
            span.set("batch", len(left))
            span.set("left_rows", len(left))
            span.set("right_rows", len(right))
            span.set("output_rows", len(result))
        return result


def natural_join_blocks(left: ColumnBlock, right: ColumnBlock, *,
                        project_onto: Optional[FrozenSet[Attribute]] = None,
                        name: Optional[str] = None) -> ColumnBlock:
    """``left ⋈ right`` with fused projection, by batched probe and gather.

    The output attribute order follows the row operator's rule — ``left``'s
    columns then ``right``'s right-only columns, filtered by ``project_onto``
    — so decoding at the result boundary yields byte-identical schemas.
    """
    span = current_tracer().span("kernel:join")
    with span:
        backend = active_column_backend()
        joined_attributes = list(left.attributes)
        left_set = left.attribute_set
        for attribute in right.attributes:
            if attribute not in left_set:
                joined_attributes.append(attribute)
        if project_onto is not None:
            kept = [a for a in joined_attributes if a in project_onto]
        else:
            kept = joined_attributes
        out_name = name or f"({left.name} ⋈ {right.name})"

        _same_generation(left, right)
        separator = shared_block_attributes(left, right)
        batch = len(left) if (not separator or len(left) > len(right)) \
            else len(right)
        # The whole-result cache: a warm re-execution joins fresh but
        # byte-identical selections of the same cached storages, and because
        # hits return the *same* output block (same storage identity), every
        # downstream join over that output hits too — the warm fold becomes
        # cache lookups all the way up the join tree.
        cache_key = ("join", backend.name, out_name,
                     left.attributes, right.attributes, tuple(kept),
                     left.selection_bytes(),
                     right.storage_token(), right.selection_bytes())
        block = left.derived_get(cache_key)
        if block is None:
            block = left.derived_put(
                cache_key, _joined_block(left, right, separator, kept,
                                         joined_attributes, out_name, backend))
        if span.is_recording:
            span.set("mode", "columnar")
            span.set("backend", backend.name)
            span.set("batch", batch)
            span.set("left_rows", len(left))
            span.set("right_rows", len(right))
            span.set("output_rows", len(block))
        return block


def _joined_block(left: ColumnBlock, right: ColumnBlock,
                  separator: Tuple[Attribute, ...],
                  kept: Iterable[Attribute], joined_attributes: list,
                  out_name: str, backend) -> ColumnBlock:
    """Compute one natural-join output block (the cache-miss path)."""
    left_set = left.attribute_set
    if not separator:
        left_positions = array("q")
        right_positions = array("q")
        right_all = list(right.positions)
        for i in left.positions:
            left_positions.extend([i] * len(right_all))
            right_positions.extend(right_all)
    else:
        # Build the cached join table on the smaller side, probe it with
        # the other side's whole code array; the orientation only affects
        # the probe order, never the output.
        if len(left) <= len(right):
            table = left.join_table(separator, backend)
            left_positions, right_positions = backend.probe_table(
                table, right.key_codes(separator), right.positions)
        else:
            table = right.join_table(separator, backend)
            right_positions, left_positions = backend.probe_table(
                table, left.key_codes(separator), left.positions)

    columns: Dict[Attribute, array] = {}
    for attribute in kept:
        if attribute in left_set:
            columns[attribute] = backend.take(left.column(attribute),
                                              left_positions)
        else:
            columns[attribute] = backend.take(right.column(attribute),
                                              right_positions)
    # The explicit length carries the row count through 0-ary projections
    # (boolean sub-results), where there is no column left to measure.
    block = ColumnBlock._from_ids(out_name, tuple(kept), columns,
                                  len(left_positions), left.interner)
    if len(kept) != len(joined_attributes):
        block = block.distinct()
    return block


def intersect_blocks(left: ColumnBlock, right: ColumnBlock) -> ColumnBlock:
    """The intersection of two same-scheme blocks (keeps ``left``'s name/order)."""
    return semijoin_blocks(left, right, on=left.attributes)


def merge_blocks_by_scheme(relations: Iterable[Relation]) -> Dict[Edge, ColumnBlock]:
    """One (cached) block per distinct scheme, same-scheme relations intersected.

    The columnar counterpart of
    :func:`~repro.engine.semijoin.merge_relations_by_scheme`, feeding the
    evaluator's vertex mapping and the cluster materialisation.  A scheme
    with a single relation — the overwhelmingly common case — passes its
    cached block through untouched, and the intersect path's subset fast
    path returns the existing block itself when the second relation filters
    nothing, so no position vectors are re-materialised for identities.
    """
    grouped: Dict[Edge, ColumnBlock] = {}
    for relation in relations:
        block = block_for(relation) if isinstance(relation, Relation) else relation
        edge = block.attribute_set
        existing = grouped.get(edge)
        if existing is None:
            grouped[edge] = block
        else:
            grouped[edge] = intersect_blocks(existing, block)
    return grouped
