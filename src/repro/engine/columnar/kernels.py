"""Vectorized semijoin / antijoin / natural-join kernels over column blocks.

These are the columnar physical operators — the whole-block counterparts of
:mod:`repro.engine.semijoin`.  They compute exactly the same relations (same
rows, same attribute order rules) but operate on cached grouped key encodings
instead of probing rows one at a time:

* a **semijoin** filters the left block's selection vector by set membership
  of its cached encoded keys in the right block's key set;
* a **natural join** groups the build side's positions by encoded key,
  probes the other side's key array, and materialises the output by
  gathering columns positionally — no intermediate ``Row`` objects exist at
  any point;
* **fused projection** drops dead columns before the gather and deduplicates
  positionally, mirroring the row operators' set semantics.

Identity contracts match the row operators: a semijoin/antijoin that filters
nothing returns the *left block itself*, so reducer fixpoints allocate
nothing and ``is``-based stability checks work unchanged.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ...core.hypergraph import Edge
from ...core.nodes import sorted_nodes
from ...exceptions import UnknownAttributeError
from ...relational.relation import Relation
from ...relational.schema import Attribute
from ...telemetry.tracing import current_tracer
from .block import ColumnBlock, block_for

__all__ = [
    "shared_block_attributes",
    "semijoin_blocks",
    "antijoin_blocks",
    "natural_join_blocks",
    "intersect_blocks",
    "merge_blocks_by_scheme",
]


def shared_block_attributes(left: ColumnBlock, right: ColumnBlock) -> Tuple[Attribute, ...]:
    """The separator: attributes common to both blocks, in canonical order."""
    return tuple(sorted_nodes(left.attribute_set & right.attribute_set))


def _separator(left: ColumnBlock, right: ColumnBlock,
               on: Optional[Iterable[Attribute]]) -> Tuple[Attribute, ...]:
    """The effective separator, canonicalised so key dictionaries are shared.

    An ``on`` override must be a subset of both blocks' schemes.  Unlike the
    row operators the attribute order is always canonical here — the grouped
    key encoding is cached per attribute *tuple*, and key-set membership is
    order-invariant anyway.
    """
    if on is None:
        return shared_block_attributes(left, right)
    separator = tuple(sorted_nodes(on))
    for attribute in separator:
        if attribute not in left.attribute_set or attribute not in right.attribute_set:
            raise UnknownAttributeError(attribute)
    return separator


def semijoin_blocks(left: ColumnBlock, right: ColumnBlock,
                    on: Optional[Iterable[Attribute]] = None) -> ColumnBlock:
    """``left ⋉ right`` by encoded-key-set membership.

    Returns ``left`` itself when nothing is filtered out, exactly like
    :func:`~repro.engine.semijoin.semijoin_indexed`.
    """
    span = current_tracer().span("kernel:semijoin")
    with span:
        separator = _separator(left, right, on)
        if not separator:
            result = left if len(right) else left.empty()
        else:
            right_ids = right.key_code_set(separator)
            codes = left.key_codes(separator)
            keep = tuple(position for position in left.positions
                         if codes[position] in right_ids)
            result = left if len(keep) == len(left) else left.select(keep)
        if span.is_recording:
            span.set("mode", "columnar")
            span.set("left_rows", len(left))
            span.set("right_rows", len(right))
            span.set("output_rows", len(result))
        return result


def antijoin_blocks(left: ColumnBlock, right: ColumnBlock,
                    on: Optional[Iterable[Attribute]] = None) -> ColumnBlock:
    """``left ▷ right`` — the selected rows of ``left`` with no partner in ``right``."""
    span = current_tracer().span("kernel:antijoin")
    with span:
        separator = _separator(left, right, on)
        if not separator:
            result = left.empty() if len(right) else left
        else:
            right_ids = right.key_code_set(separator)
            codes = left.key_codes(separator)
            keep = tuple(position for position in left.positions
                         if codes[position] not in right_ids)
            result = left if len(keep) == len(left) else left.select(keep)
        if span.is_recording:
            span.set("mode", "columnar")
            span.set("left_rows", len(left))
            span.set("right_rows", len(right))
            span.set("output_rows", len(result))
        return result


def natural_join_blocks(left: ColumnBlock, right: ColumnBlock, *,
                        project_onto: Optional[FrozenSet[Attribute]] = None,
                        name: Optional[str] = None) -> ColumnBlock:
    """``left ⋈ right`` with fused projection, by positional gather.

    The output attribute order follows the row operator's rule — ``left``'s
    columns then ``right``'s right-only columns, filtered by ``project_onto``
    — so decoding at the result boundary yields byte-identical schemas.
    """
    span = current_tracer().span("kernel:join")
    with span:
        joined_attributes = list(left.attributes)
        left_set = left.attribute_set
        for attribute in right.attributes:
            if attribute not in left_set:
                joined_attributes.append(attribute)
        if project_onto is not None:
            kept = [a for a in joined_attributes if a in project_onto]
        else:
            kept = joined_attributes
        out_name = name or f"({left.name} ⋈ {right.name})"

        separator = shared_block_attributes(left, right)
        left_positions: List[int] = []
        right_positions: List[int] = []
        if not separator:
            right_all = tuple(right.positions)
            for i in left.positions:
                for j in right_all:
                    left_positions.append(i)
                    right_positions.append(j)
        else:
            # Build the key-group index on the smaller side, probe with the
            # other; the orientation only affects the probe order, never the
            # output.
            if len(left) <= len(right):
                groups = left.key_groups(separator)
                codes = right.key_codes(separator)
                for j in right.positions:
                    matches = groups.get(codes[j])
                    if matches:
                        for i in matches:
                            left_positions.append(i)
                            right_positions.append(j)
            else:
                groups = right.key_groups(separator)
                codes = left.key_codes(separator)
                for i in left.positions:
                    matches = groups.get(codes[i])
                    if matches:
                        for j in matches:
                            left_positions.append(i)
                            right_positions.append(j)

        columns: Dict[Attribute, List] = {}
        for attribute in kept:
            if attribute in left_set:
                source = left.column(attribute)
                positions = left_positions
            else:
                source = right.column(attribute)
                positions = right_positions
            columns[attribute] = [source[position] for position in positions]
        # The explicit length carries the row count through 0-ary projections
        # (boolean sub-results), where there is no column left to measure.
        block = ColumnBlock.from_columns(out_name, kept, columns,
                                         length=len(left_positions))
        if len(kept) != len(joined_attributes):
            block = block.distinct()
        if span.is_recording:
            span.set("mode", "columnar")
            span.set("left_rows", len(left))
            span.set("right_rows", len(right))
            span.set("output_rows", len(block))
        return block


def intersect_blocks(left: ColumnBlock, right: ColumnBlock) -> ColumnBlock:
    """The intersection of two same-scheme blocks (keeps ``left``'s name/order)."""
    return semijoin_blocks(left, right, on=left.attributes)


def merge_blocks_by_scheme(relations: Iterable[Relation]) -> Dict[Edge, ColumnBlock]:
    """One (cached) block per distinct scheme, same-scheme relations intersected.

    The columnar counterpart of
    :func:`~repro.engine.semijoin.merge_relations_by_scheme`, feeding the
    evaluator's vertex mapping and the cluster materialisation.
    """
    grouped: Dict[Edge, ColumnBlock] = {}
    for relation in relations:
        block = block_for(relation) if isinstance(relation, Relation) else relation
        edge = block.attribute_set
        existing = grouped.get(edge)
        if existing is None:
            grouped[edge] = block
        else:
            grouped[edge] = intersect_blocks(existing, block)
    return grouped
