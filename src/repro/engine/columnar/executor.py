"""The columnar execution pipeline: reduce and join whole blocks, decode last.

This module is the block-level mirror of the physical half of
:func:`repro.engine.yannakakis.evaluate`: the same compiled plan (structure
or annotated), the same two reducer passes, the same bottom-up join fold with
fused projection — but every operator runs on :class:`ColumnBlock` values and
the result is decoded to a :class:`~repro.relational.relation.Relation` only
at the boundary.  All *logical* accounting (intermediate sizes, reduction
trace, reduced sizes) is byte-identical to the row engine's, so statistics
and acceptance bounds compare one-to-one across execution modes.

Both the acyclic evaluator and the cyclic executor drive this pipeline: the
former encodes input relations into cached blocks, the latter feeds the
cluster blocks :func:`~repro.engine.cyclic.quotient.materialise_cluster_blocks`
produced — no decode/re-encode round trip between the phases.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Tuple

from ...core.hypergraph import Edge
from ...exceptions import SchemaError
from ...relational.relation import Relation
from ...relational.schema import Attribute
from ...telemetry.tracing import current_tracer
from ..catalog import RelationStatistics, StatisticsCatalog
from ..fold import fold_join_tree
from ..reducer import ReductionTrace
from .block import ColumnBlock
from .kernels import merge_blocks_by_scheme, natural_join_blocks

__all__ = [
    "vertex_blocks",
    "run_columnar_plan",
    "catalog_from_blocks",
    "statistics_from_block",
]


def _skip_check(blocks, rooted) -> bool:
    """The no-op proof-of-reduction hook used when ``check_reduction`` is off."""
    return True


def vertex_blocks(relations: Sequence[Relation],
                  vertices: Tuple[Edge, ...]) -> Dict[Edge, ColumnBlock]:
    """One block per join-tree vertex (same-scheme inputs intersected).

    ``relations`` may mix :class:`Relation` objects (encoded through the
    per-relation block cache) and pre-built :class:`ColumnBlock` values (the
    cyclic executor's materialised clusters).
    """
    span = current_tracer().span("encode")
    with span:
        merged = merge_blocks_by_scheme(relations)
        result: Dict[Edge, ColumnBlock] = {}
        for vertex in vertices:
            block = merged.get(vertex)
            if block is None:
                raise SchemaError("join-tree vertex without a matching relation")
            result[vertex] = block
        if span.is_recording:
            span.set("mode", "columnar")
            span.set("vertices", len(result))
            span.set("input_rows", sum(len(block) for block in result.values()))
        return result


def run_columnar_plan(plan, annotated, blocks: Dict[Edge, ColumnBlock],
                      wanted: Optional[FrozenSet[Attribute]], *,
                      trace: Optional[ReductionTrace] = None,
                      check_reduction: bool = False
                      ) -> Tuple[ColumnBlock, Tuple[int, ...], Dict[str, float]]:
    """Reduce and bottom-up-join the vertex blocks.

    Returns ``(result block, intermediates, phase seconds)`` — the third
    element holds the measured ``reduce`` and ``fold`` wall-times, which the
    drivers fold into :attr:`EngineStatistics.phase_times
    <repro.engine.planner.EngineStatistics.phase_times>`.

    ``plan`` is the structure :class:`~repro.engine.planner.ExecutionPlan`;
    ``annotated`` (optional) supplies the cost-ordered reducer and the child
    fold order, exactly as in the row evaluator.  The join fold *is* the row
    evaluator's — :func:`~repro.engine.fold.fold_join_tree` with the block
    kernels plugged in — so the keep-set computation and the recorded
    intermediate sizes agree with the row engine by construction.
    """
    reducer = annotated.reducer if annotated is not None else plan.reducer
    reduce_started = perf_counter()
    reduced = reducer.run_blocks(blocks, trace=trace,
                                 check_hook=None if check_reduction else _skip_check)
    reduce_seconds = perf_counter() - reduce_started
    fold_started = perf_counter()
    result, intermediates = fold_join_tree(
        plan.rooted, reduced, wanted,
        order_children=(annotated.order_children if annotated is not None
                        else lambda vertex, children: children),
        join=lambda left, right, keep: natural_join_blocks(left, right,
                                                           project_onto=keep),
        project=lambda block, keep: block.project_onto(keep).distinct(),
        attributes_of=lambda block: block.attribute_set)
    fold_seconds = perf_counter() - fold_started
    return result, tuple(intermediates), {"reduce": reduce_seconds,
                                          "fold": fold_seconds}


def statistics_from_block(block: ColumnBlock) -> RelationStatistics:
    """Exact relation statistics measured columnar-side (no row decode).

    Cardinality is the selection length; the per-attribute distinct counts
    are set sizes over the selected column values — the same numbers
    :meth:`RelationStatistics.measure
    <repro.engine.catalog.RelationStatistics.measure>` computes from rows.
    """
    positions = block.positions
    distinct = {}
    for attribute in block.attributes:
        column = block.column(attribute)
        distinct[attribute] = len({column[position] for position in positions})
    return RelationStatistics(edge=block.attribute_set, cardinality=len(block),
                              distinct_counts=distinct, exact=True)


def catalog_from_blocks(blocks: Iterable[ColumnBlock]) -> StatisticsCatalog:
    """An exact statistics catalog of already-materialised blocks."""
    return StatisticsCatalog(statistics_from_block(block) for block in blocks)
