"""Typed column buffers: the id interner and the batched compute backends.

The columnar layer stores every column as a compact ``array('q')`` of
**value ids**: a process-generation :class:`ValueInterner` maps each distinct
value (and each distinct multi-attribute key tuple) to a dense integer, so
equal values in *different* blocks encode to equal ids and every kernel
compares machine integers instead of Python objects.  Decoding happens only
at the result boundary, through the interner's reverse table.

On top of the id arrays sits a small **column-buffer backend** interface —
the batched counterparts of "probe one key": filter a whole position vector
by key-set membership, probe a join table with a whole code array, gather a
column by a position vector, keep first occurrences.  Two implementations
ship:

* :class:`ArrayColumnBackend` — pure Python over ``array('q')``; always
  available, and the reference the property suite holds numpy to;
* :class:`NumpyColumnBackend` — the same operations vectorized with
  ``numpy`` (``frombuffer`` gives zero-copy int64 views of the id arrays);
  registered only when numpy imports.

The active backend resolves per call site: an execution-scoped override
(:func:`use_column_backend`, installed by the evaluators from
``ExecutionOptions.column_backend``) wins over the process default, which is
seeded from ``REPRO_COLUMN_BACKEND`` or auto-detection (numpy when present).
Both backends consume and produce the same canonical ``array('q')``
selection vectors, so blocks built under one backend are probed by the
other without conversion — the backend changes *compute*, never *state*.
"""

from __future__ import annotations

import os
import threading
from array import array
from contextlib import contextmanager
from itertools import compress
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "ValueInterner",
    "ArrayColumnBackend",
    "NumpyColumnBackend",
    "COLUMN_BACKENDS",
    "available_column_backends",
    "default_column_backend",
    "set_default_column_backend",
    "resolve_column_backend",
    "active_column_backend",
    "use_column_backend",
]

try:  # pragma: no cover - exercised on both legs of the CI numpy matrix
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: The canonical positions type: a selection vector or a full ``range``.
Positions = Union[array, range]

IdArray = array


# --------------------------------------------------------------------------- #
# The interner
# --------------------------------------------------------------------------- #
class ValueInterner:
    """A dense value → id dictionary shared by every block of one generation.

    Ids are allocated from a single counter across plain values and
    multi-attribute key tuples (two separate forward dictionaries, so a
    tuple-*valued* column entry can never collide with a tuple-of-ids key),
    which keeps every id usable as an index into one reverse table.  A new
    interner is installed by :func:`~repro.engine.columnar.clear_column_caches`;
    storages keep a reference to the interner they were encoded under, so
    blocks that survive a cache clear still decode — they just cannot be
    combined with blocks of a newer generation (the kernels check).
    """

    __slots__ = ("_value_ids", "_tuple_ids", "values", "_lock")

    def __init__(self) -> None:
        self._value_ids: Dict[Any, int] = {}
        self._tuple_ids: Dict[Tuple[int, ...], int] = {}
        #: id → original value (key tuples are stored too, keeping indexes
        #: aligned; they are never decoded).
        self.values: List[Any] = []
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self.values)

    def encode(self, column: Iterable[Any]) -> IdArray:
        """Intern one column of values into an id array (one pass, one lock)."""
        out = array("q")
        append = out.append
        ids = self._value_ids
        with self._lock:
            values = self.values
            for value in column:
                encoded = ids.get(value)
                if encoded is None:
                    encoded = len(values)
                    ids[value] = encoded
                    values.append(value)
                append(encoded)
        return out

    def combine(self, columns: Sequence[IdArray]) -> IdArray:
        """Intern per-position id tuples of a multi-attribute key into one id array."""
        out = array("q")
        append = out.append
        ids = self._tuple_ids
        with self._lock:
            values = self.values
            for key in zip(*columns):
                encoded = ids.get(key)
                if encoded is None:
                    encoded = len(values)
                    ids[key] = encoded
                    values.append(key)
                append(encoded)
        return out

    def decode(self, column: IdArray) -> List[Any]:
        """The original values of one id column (reads are lock-free)."""
        values = self.values
        return [values[encoded] for encoded in column]


# --------------------------------------------------------------------------- #
# Backends
# --------------------------------------------------------------------------- #
class ArrayColumnBackend:
    """The always-available pure-Python backend over ``array('q')`` buffers.

    Loops are written against C-level building blocks (``map`` +
    ``array.__init__``, list comprehensions over int membership, ``extend``
    of cached buckets) so even without numpy the kernels move whole position
    vectors per call instead of rebuilding Python tuples per row.
    """

    name = "array"

    def selection(self, positions: Iterable[int]) -> IdArray:
        """Canonicalise any position iterable into an ``array('q')`` vector."""
        if type(positions) is array:
            return positions
        return array("q", positions)

    def take(self, column: IdArray, positions: Positions) -> IdArray:
        """Gather ``column[p]`` for every selected position, as a new id array."""
        return array("q", map(column.__getitem__, positions))

    def prepare_set(self, key_set: FrozenSet[int]) -> FrozenSet[int]:
        """The membership structure :meth:`filter_membership` probes (cached upstream)."""
        return key_set

    @staticmethod
    def _gathered(codes: IdArray, positions: Positions) -> Iterable[int]:
        """``codes[p]`` for every selected position, as a C-level iterator."""
        if type(positions) is range and len(positions) == len(codes):
            return codes
        return map(codes.__getitem__, positions)

    def filter_membership(self, codes: IdArray, positions: Positions,
                          prepared: FrozenSet[int], *,
                          negate: bool = False) -> IdArray:
        """The positions whose code is (not) in the prepared key set."""
        gathered = self._gathered(codes, positions)
        if negate:
            flags = [code not in prepared for code in gathered]
        else:
            flags = map(prepared.__contains__, gathered)
        return array("q", compress(positions, flags))

    def build_table(self, codes: IdArray, positions: Positions) -> Dict[int, IdArray]:
        """Group the selected positions by code — the hash-join build side.

        Buckets are ``array('q')`` so probing can splice them into the output
        with a same-typecode ``extend`` (a straight memory copy).
        """
        table: Dict[int, IdArray] = {}
        get = table.get
        for p, code in zip(positions, self._gathered(codes, positions)):
            bucket = get(code)
            if bucket is None:
                table[code] = array("q", (p,))
            else:
                bucket.append(p)
        return table

    def probe_table(self, table: Dict[int, IdArray], codes: IdArray,
                    positions: Positions) -> Tuple[IdArray, IdArray]:
        """Probe the build table with a whole position vector.

        Returns ``(build positions, probe positions)`` — one matched pair per
        output row, probe-major, build buckets in position order.
        """
        build_out = array("q")
        probe_out = array("q")
        build_extend = build_out.extend
        probe_append = probe_out.append
        probe_extend = probe_out.extend
        get = table.get
        for p, code in zip(positions, self._gathered(codes, positions)):
            bucket = get(code)
            if bucket is not None:
                build_extend(bucket)
                if len(bucket) == 1:
                    probe_append(p)
                else:
                    probe_extend([p] * len(bucket))
        return build_out, probe_out

    def first_occurrence(self, columns: Sequence[IdArray],
                         positions: Positions) -> IdArray:
        """The selected positions whose visible id tuple appears for the first time."""
        keep = array("q")
        keep_append = keep.append
        seen: set = set()
        seen_add = seen.add
        if len(columns) == 1:
            column = columns[0]
            for p in positions:
                code = column[p]
                if code not in seen:
                    seen_add(code)
                    keep_append(p)
            return keep
        # Gather each column C-side first, then let zip build the key tuples
        # in C — an order of magnitude cheaper than a per-row genexpr.
        if type(positions) is range:
            gathered: Sequence[IdArray] = columns
        else:
            gathered = [array("q", map(column.__getitem__, positions))
                        for column in columns]
        index = 0
        for key in zip(*gathered):
            if key not in seen:
                seen_add(key)
                keep_append(positions[index])
            index += 1
        return keep


class NumpyColumnBackend:
    """The numpy backend: identical semantics, vectorized compute.

    Id arrays are viewed zero-copy via ``np.frombuffer``; membership and
    join probes run on sorted code tables with ``searchsorted`` (stable
    sorts preserve position order inside equal keys, so outputs match the
    array backend pair for pair); results are copied back into canonical
    ``array('q')`` vectors so downstream blocks stay backend-agnostic.
    """

    name = "numpy"

    def __init__(self) -> None:
        if _np is None:  # pragma: no cover - registry never builds it then
            raise RuntimeError("numpy is not installed")

    @staticmethod
    def _view(buffer: IdArray) -> "Any":
        if len(buffer) == 0:
            return _np.empty(0, dtype=_np.int64)
        return _np.frombuffer(buffer, dtype=_np.int64)

    @classmethod
    def _positions(cls, positions: Positions) -> "Any":
        if type(positions) is range:
            return _np.arange(positions.start, positions.stop, dtype=_np.int64)
        if type(positions) is array:
            return cls._view(positions)
        return _np.asarray(positions, dtype=_np.int64)

    @staticmethod
    def _to_q(vector: "Any") -> IdArray:
        out = array("q")
        out.frombytes(_np.ascontiguousarray(vector, dtype=_np.int64).tobytes())
        return out

    def selection(self, positions: Iterable[int]) -> IdArray:
        if type(positions) is array:
            return positions
        if _np is not None and isinstance(positions, _np.ndarray):
            return self._to_q(positions)
        return array("q", positions)

    def take(self, column: IdArray, positions: Positions) -> IdArray:
        return self._to_q(self._view(column)[self._positions(positions)])

    def prepare_set(self, key_set: FrozenSet[int]) -> "Any":
        if not key_set:
            return _np.empty(0, dtype=_np.int64)
        return _np.sort(_np.fromiter(key_set, dtype=_np.int64, count=len(key_set)))

    def _member_mask(self, sorted_keys: "Any", values: "Any") -> "Any":
        if sorted_keys.size == 0:
            return _np.zeros(values.shape, dtype=bool)
        slots = _np.searchsorted(sorted_keys, values)
        # A value greater than every key lands one past the end; clamping it
        # to slot 0 is safe — such a value can never equal sorted_keys[0].
        slots[slots == sorted_keys.size] = 0
        return sorted_keys[slots] == values

    def filter_membership(self, codes: IdArray, positions: Positions,
                          prepared: "Any", *, negate: bool = False) -> IdArray:
        selected = self._positions(positions)
        mask = self._member_mask(prepared, self._view(codes)[selected])
        if negate:
            mask = ~mask
        return self._to_q(selected[mask])

    def build_table(self, codes: IdArray, positions: Positions) -> Tuple["Any", "Any"]:
        selected = self._positions(positions)
        values = self._view(codes)[selected]
        order = _np.argsort(values, kind="stable")
        return values[order], selected[order]

    def probe_table(self, table: Tuple["Any", "Any"], codes: IdArray,
                    positions: Positions) -> Tuple[IdArray, IdArray]:
        sorted_codes, sorted_positions = table
        selected = self._positions(positions)
        values = self._view(codes)[selected]
        lower = _np.searchsorted(sorted_codes, values, side="left")
        upper = _np.searchsorted(sorted_codes, values, side="right")
        counts = upper - lower
        total = int(counts.sum())
        if total == 0:
            return array("q"), array("q")
        probe_out = _np.repeat(selected, counts)
        # Expand each probe's [lower, upper) match range: repeat the range
        # starts, then add a per-output offset that restarts at every probe.
        starts = _np.repeat(lower, counts)
        resets = _np.repeat(_np.cumsum(counts) - counts, counts)
        build_out = sorted_positions[starts + _np.arange(total) - resets]
        return self._to_q(build_out), self._to_q(probe_out)

    def first_occurrence(self, columns: Sequence[IdArray],
                         positions: Positions) -> IdArray:
        selected = self._positions(positions)
        if len(columns) == 1:
            values = self._view(columns[0])[selected]
        else:
            # Pack the per-column ids into one int64 key (mixed-radix over
            # each column's id range) — far cheaper than np.unique(axis=0)'s
            # row-view machinery.  Ids are dense and small, so the packed
            # range almost never overflows; when it would, fall back to the
            # scalar tuple loop.
            gathered = [self._view(column)[selected] for column in columns]
            values = self._pack(gathered)
            if values is None:
                seen: set = set()
                add = seen.add
                keep = array("q")
                append = keep.append
                for index, key in enumerate(zip(*gathered)):
                    if key not in seen:
                        add(key)
                        append(int(selected[index]))
                return keep
        _, first = _np.unique(values, return_index=True)
        if first.size == selected.size:
            return self._to_q(selected)
        return self._to_q(selected[_np.sort(first)])

    @staticmethod
    def _pack(gathered: Sequence["Any"]) -> Optional["Any"]:
        """Mixed-radix-pack gathered id columns into one int64 key array.

        Returns ``None`` when the packed range could overflow 63 bits.
        """
        if gathered[0].size == 0:
            return gathered[0]
        radix = 1
        for values in gathered:
            radix *= int(values.max()) + 1
            if radix >= (1 << 63):
                return None
        packed = gathered[0]
        for values in gathered[1:]:
            packed = packed * (int(values.max()) + 1) + values
        return packed


# --------------------------------------------------------------------------- #
# Registry, default, and execution-scoped override
# --------------------------------------------------------------------------- #
_BACKENDS: Dict[str, object] = {"array": ArrayColumnBackend()}
if _np is not None:
    _BACKENDS["numpy"] = NumpyColumnBackend()

#: Every backend name the interface knows, installed or not (for validation).
COLUMN_BACKENDS = ("array", "numpy")


def available_column_backends() -> Tuple[str, ...]:
    """The backend names usable in this process (``numpy`` only when importable)."""
    return tuple(name for name in COLUMN_BACKENDS if name in _BACKENDS)


def _initial_default() -> str:
    forced = os.environ.get("REPRO_COLUMN_BACKEND")
    if forced:
        if forced not in COLUMN_BACKENDS:
            raise ValueError(f"REPRO_COLUMN_BACKEND={forced!r} is not one of "
                             f"{COLUMN_BACKENDS}")
        if forced not in _BACKENDS:
            raise ValueError(f"REPRO_COLUMN_BACKEND={forced!r} requested but "
                             f"that backend is not installed")
        return forced
    return "numpy" if "numpy" in _BACKENDS else "array"


_DEFAULT_BACKEND = _initial_default()


def default_column_backend() -> str:
    """The process-wide default backend name (auto-detected unless overridden)."""
    return _DEFAULT_BACKEND


def set_default_column_backend(name: str) -> str:
    """Set the process-wide default backend; return the previous name."""
    global _DEFAULT_BACKEND
    if name not in COLUMN_BACKENDS:
        raise ValueError(f"unknown column backend {name!r}; "
                         f"expected one of {COLUMN_BACKENDS}")
    if name not in _BACKENDS:
        raise ValueError(f"column backend {name!r} is not available "
                         f"(numpy is not installed)")
    previous = _DEFAULT_BACKEND
    _DEFAULT_BACKEND = name
    return previous


def resolve_column_backend(name: Optional[str]) -> object:
    """``None`` → the active (override or default) backend; a name is validated."""
    if name is None:
        return active_column_backend()
    if name not in COLUMN_BACKENDS:
        raise ValueError(f"unknown column backend {name!r}; "
                         f"expected one of {COLUMN_BACKENDS} or None")
    backend = _BACKENDS.get(name)
    if backend is None:
        raise ValueError(f"column backend {name!r} is not available "
                         f"(numpy is not installed)")
    return backend


_ACTIVE = threading.local()


def active_column_backend() -> object:
    """The backend the kernels use right now: the innermost override, else the default."""
    override = getattr(_ACTIVE, "backend", None)
    if override is not None:
        return override
    return _BACKENDS[_DEFAULT_BACKEND]


@contextmanager
def use_column_backend(backend: object):
    """Install ``backend`` as this thread's active backend for the duration."""
    previous = getattr(_ACTIVE, "backend", None)
    _ACTIVE.backend = backend
    try:
        yield backend
    finally:
        _ACTIVE.backend = previous
