"""Columnar blocks: typed id arrays per attribute with positional selection vectors.

A :class:`ColumnBlock` is the columnar physical representation of a relation:
one ``array('q')`` of dictionary-encoded value ids per attribute plus an
optional *selection vector* of storage positions.  Filtering a block
(semijoin, antijoin) only replaces the selection vector; projecting or
renaming it only changes the visible column set — the underlying
:class:`_ColumnStorage` (and everything cached on it: grouped key encodings,
key-id sets, join tables) is shared zero-copy by every derived block.

Values are interned through the generation's
:class:`~repro.engine.columnar.buffers.ValueInterner`, so equal values in
*different* blocks encode to equal integer ids and every kernel compares
machine integers; multi-attribute keys intern their id tuples through the
same id space.  Decoding back to values happens only at the result boundary
(or on the opt-in :meth:`ColumnBlock.value_at` accessors).

**Selection-aware derived caches** are what make warm prepared-query runs
cheap: key-id sets, membership structures and join tables are cached on the
storage keyed by ``(kind, attributes, selection bytes, backend)``.  A warm
re-execution reproduces the same selection vectors over the same cached
base-block storages, so every reducer step and join build probes a cached
structure — the ``keyset_hits`` counter in :func:`column_cache_info` makes
that observable.

Blocks built from relations are cached weakly per relation instance
(:func:`block_for`), mirroring the row engine's
:func:`~repro.engine.indexes.index_for` cache, so repeated executions over
one database encode each stored relation exactly once.

The process-wide **execution mode** switch also lives here:
``"columnar"`` (the default) runs the engine's physical layer on blocks,
``"row"`` keeps the original row-at-a-time operators as the reference
implementation for differential testing.
"""

from __future__ import annotations

import threading
import weakref
from array import array
from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from ...core.nodes import sorted_nodes
from ...exceptions import SchemaError, UnknownAttributeError
from ...relational.relation import Relation, Row
from ...relational.schema import Attribute, RelationSchema
from .buffers import ValueInterner, active_column_backend

__all__ = [
    "ColumnBlock",
    "block_for",
    "peek_block",
    "column_cache_info",
    "clear_column_caches",
    "current_interner",
    "EXECUTION_MODES",
    "default_execution_mode",
    "set_default_execution_mode",
    "resolve_execution_mode",
]

KeyAttributes = Tuple[Attribute, ...]

#: How many derived structures (key sets, join tables, …) one storage retains
#: before its cache is dropped wholesale — a crude bound that keeps adversarial
#: selection churn from accumulating unboundedly on long-lived base blocks.
_DERIVED_CACHE_CAP = 512

# --------------------------------------------------------------------------- #
# Execution mode
# --------------------------------------------------------------------------- #
EXECUTION_MODES = ("columnar", "row")

_DEFAULT_MODE = "columnar"


def default_execution_mode() -> str:
    """The process-wide physical execution mode (``"columnar"`` unless overridden)."""
    return _DEFAULT_MODE


def set_default_execution_mode(mode: str) -> str:
    """Set the process-wide execution mode; return the previous one.

    Used by differential tests and benchmarks to flip the whole engine
    between the columnar and the row reference implementation without
    threading an option through every call site.
    """
    global _DEFAULT_MODE
    if mode not in EXECUTION_MODES:
        raise ValueError(f"unknown execution mode {mode!r}; "
                         f"expected one of {EXECUTION_MODES}")
    previous = _DEFAULT_MODE
    _DEFAULT_MODE = mode
    return previous


def resolve_execution_mode(mode: Optional[str]) -> str:
    """``None`` → the process default; anything else is validated and returned."""
    if mode is None:
        return _DEFAULT_MODE
    if mode not in EXECUTION_MODES:
        raise ValueError(f"unknown execution mode {mode!r}; "
                         f"expected one of {EXECUTION_MODES}")
    return mode


# --------------------------------------------------------------------------- #
# The encoding generation
# --------------------------------------------------------------------------- #
_INTERNER = ValueInterner()

# Selection-aware key-id-set cache traffic (storage-level, process-wide
# counters so ``column_cache_info`` can report reuse across warm runs).
# Guarded by ``_KEYSET_LOCK``: a bare ``+= 1`` compiles to a read-add-store
# sequence that loses updates when concurrent executes interleave, and these
# counters feed bench/test assertions that expect exact totals.
_KEYSET_HITS = 0
_KEYSET_MISSES = 0
_KEYSET_LOCK = threading.Lock()


def _count_keyset(hit: bool) -> None:
    global _KEYSET_HITS, _KEYSET_MISSES
    with _KEYSET_LOCK:
        if hit:
            _KEYSET_HITS += 1
        else:
            _KEYSET_MISSES += 1


def current_interner() -> ValueInterner:
    """The interner new encodings go through (swapped by :func:`clear_column_caches`)."""
    return _INTERNER


class _ColumnStorage:
    """The shared, immutable id arrays one or more blocks view.

    ``key_codes`` memoises the grouped key encoding per key-attribute tuple
    (the bare id column for a single attribute, interned id tuples
    otherwise); the ``_derived`` cache memoises everything computed *from*
    codes under a selection — key-id sets, backend membership structures,
    join tables, position groups — keyed by the selection's bytes, so every
    block with an equal selection over this storage (including the fresh but
    identical selections of a warm re-execution) reuses one build.

    **Concurrency contract** (concurrent executes share storages through the
    per-relation block cache): cached values are immutable once published and
    derivable only from immutable inputs, so *lookups* are lock-free — two
    threads racing on a cold key both build equivalent structures and the
    last insert wins, which wastes one build but never corrupts a result
    (CPython dict get/set are single bytecode operations).  The one compound
    mutation — the cap-eviction ``clear()`` followed by the insert in
    :meth:`_derived_put` — runs under the storage lock so an eviction cannot
    interleave halfway into another thread's insert.  Interner encode/combine
    are locked in :class:`~repro.engine.columnar.buffers.ValueInterner`
    itself; its decode is lock-free by the values-before-ids publication
    order there.
    """

    __slots__ = ("columns", "length", "source_rows", "interner",
                 "_code_cache", "_derived", "_decoded", "_lock")

    def __init__(self, columns: Dict[Attribute, array], length: int,
                 interner: ValueInterner,
                 source_rows: Optional[Tuple[Row, ...]] = None) -> None:
        self.columns = columns
        self.length = length
        self.interner = interner
        self.source_rows = source_rows
        self._code_cache: Dict[KeyAttributes, array] = {}
        self._derived: Dict[Tuple, Any] = {}
        self._decoded: Dict[Attribute, List[Any]] = {}
        self._lock = threading.Lock()

    # -- codes ----------------------------------------------------------- #
    def key_codes(self, attributes: KeyAttributes) -> array:
        """One encoded key id per storage position (cached per attribute tuple)."""
        if len(attributes) == 1:
            return self.columns[attributes[0]]
        cached = self._code_cache.get(attributes)
        if cached is None:
            cached = self._code_cache[attributes] = self.interner.combine(
                [self.columns[attribute] for attribute in attributes])
        return cached

    # -- selection-aware derived structures ------------------------------ #
    def _derived_get(self, key: Tuple) -> Any:
        return self._derived.get(key)

    def _derived_put(self, key: Tuple, value: Any) -> Any:
        # Evict-then-insert is the one compound mutation on this dict; the
        # lock keeps a concurrent insert from landing between another
        # thread's clear() and insert (readers hold their own references, so
        # an eviction never invalidates a value already handed out).
        with self._lock:
            if len(self._derived) >= _DERIVED_CACHE_CAP:
                self._derived.clear()
            self._derived[key] = value
        return value

    def key_set_for(self, attributes: KeyAttributes,
                    sel: Optional[array]) -> FrozenSet[int]:
        """The distinct key ids among the selected positions (cached, counted)."""
        key = ("set", attributes, None if sel is None else sel.tobytes())
        cached = self._derived_get(key)
        if cached is not None:
            _count_keyset(hit=True)
            return cached
        _count_keyset(hit=False)
        codes = self.key_codes(attributes)
        if sel is None:
            return self._derived_put(key, frozenset(codes))
        return self._derived_put(key,
                                 frozenset(map(codes.__getitem__, sel)))

    def prepared_set_for(self, attributes: KeyAttributes, sel: Optional[array],
                         backend) -> Any:
        """The backend's membership structure over the selected key ids (cached)."""
        key = ("prepared", backend.name, attributes,
               None if sel is None else sel.tobytes())
        cached = self._derived_get(key)
        if cached is None:
            cached = self._derived_put(
                key, backend.prepare_set(self.key_set_for(attributes, sel)))
        return cached

    def table_for(self, attributes: KeyAttributes, sel: Optional[array],
                  backend) -> Any:
        """The backend's join build table over the selected positions (cached)."""
        key = ("table", backend.name, attributes,
               None if sel is None else sel.tobytes())
        cached = self._derived_get(key)
        if cached is None:
            codes = self.key_codes(attributes)
            positions = sel if sel is not None else range(self.length)
            cached = self._derived_put(key, backend.build_table(codes, positions))
        return cached

    def groups_for(self, attributes: KeyAttributes,
                   sel: Optional[array]) -> Dict[int, Tuple[int, ...]]:
        """Selected positions grouped by key id, as a plain dict (cached)."""
        key = ("groups", attributes, None if sel is None else sel.tobytes())
        cached = self._derived_get(key)
        if cached is None:
            codes = self.key_codes(attributes)
            positions = sel if sel is not None else range(self.length)
            grouped: Dict[int, List[int]] = {}
            get = grouped.get
            for position in positions:
                code = codes[position]
                bucket = get(code)
                if bucket is None:
                    grouped[code] = [position]
                else:
                    bucket.append(position)
            cached = self._derived_put(
                key, {code: tuple(bucket) for code, bucket in grouped.items()})
        return cached

    # -- decode ---------------------------------------------------------- #
    def decoded_column(self, attribute: Attribute) -> List[Any]:
        """The full-length original values of one column (cached per attribute)."""
        cached = self._decoded.get(attribute)
        if cached is None:
            cached = self._decoded[attribute] = self.interner.decode(
                self.columns[attribute])
        return cached

    # -- pickling -------------------------------------------------------- #
    def __reduce__(self):
        """Ship the id vectors plus a storage-local vocabulary.

        Interner ids are process-generation state, so a pickled storage
        remaps every id to a dense local id and carries the referenced
        values (only those — not the whole interner) alongside.  Unpickling
        re-encodes the vocabulary through the *receiving* process'
        generation, so rebuilt blocks combine freely with blocks encoded
        there.  Derived caches, the lock and ``source_rows`` are dropped —
        all are rebuildable (or decodable) on the other side.
        """
        values = self.interner.values
        local_ids: Dict[int, int] = {}
        vocabulary: List[Any] = []
        column_items: List[Tuple[Attribute, bytes]] = []
        for attribute, column in self.columns.items():
            local = array("q")
            append = local.append
            for encoded in column:
                local_id = local_ids.get(encoded)
                if local_id is None:
                    local_id = local_ids[encoded] = len(vocabulary)
                    vocabulary.append(values[encoded])
                append(local_id)
            column_items.append((attribute, local.tobytes()))
        return (_rebuild_storage,
                (tuple(column_items), self.length, tuple(vocabulary)))


def _rebuild_storage(column_items: Tuple[Tuple[Attribute, bytes], ...],
                     length: int, vocabulary: Tuple[Any, ...]) -> _ColumnStorage:
    """Rebuild a pickled storage under *this* process' interner generation.

    The shipped local ids index ``vocabulary``; encoding the vocabulary once
    through the current interner yields the local→global id mapping, and the
    columns are rewritten through it in one pass.
    """
    interner = _INTERNER
    mapping = interner.encode(vocabulary)
    columns: Dict[Attribute, array] = {}
    for attribute, raw in column_items:
        local = array("q")
        local.frombytes(raw)
        columns[attribute] = array("q", map(mapping.__getitem__, local))
    return _ColumnStorage(columns, length, interner)


def _rebuild_block(name: str, attributes: KeyAttributes,
                   storage: _ColumnStorage,
                   selection_bytes: Optional[bytes]) -> "ColumnBlock":
    selection = None
    if selection_bytes is not None:
        selection = array("q")
        selection.frombytes(selection_bytes)
    return ColumnBlock(name, attributes, storage, selection)


class ColumnBlock:
    """A columnar view of a relation: shared id columns + a positional selection.

    Blocks are immutable; every operation returns a new block.  ``project``,
    ``rename`` and ``select`` are zero-copy (they share the storage), so the
    reducer's semijoin fixpoints and the join phase's fused projections never
    duplicate value arrays.
    """

    __slots__ = ("_name", "_attributes", "_attribute_set", "_storage", "_sel",
                 "_schema")

    def __init__(self, name: str, attributes: KeyAttributes,
                 storage: _ColumnStorage,
                 selection: Optional[array] = None) -> None:
        self._name = name
        self._attributes = attributes
        self._attribute_set: FrozenSet[Attribute] = frozenset(attributes)
        self._storage = storage
        self._sel = selection
        self._schema: Optional[RelationSchema] = None

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_relation(cls, relation: Relation) -> "ColumnBlock":
        """Encode a relation into id columns (one interning pass per attribute).

        The source rows are retained on the storage so the row engine's
        :meth:`HashIndex.build_columnar
        <repro.engine.indexes.HashIndex.build_columnar>` path can bucket the
        *original* ``Row`` objects by encoded key without re-materialising
        them.
        """
        attributes = relation.schema.attributes
        rows = tuple(relation.rows)
        interner = _INTERNER
        columns: Dict[Attribute, array] = {
            attribute: interner.encode(row[attribute] for row in rows)
            for attribute in attributes}
        storage = _ColumnStorage(columns, len(rows), interner, source_rows=rows)
        return cls(relation.name, attributes, storage)

    @classmethod
    def from_columns(cls, name: str, attributes: Iterable[Attribute],
                     columns: Dict[Attribute, List[Any]], *,
                     length: Optional[int] = None) -> "ColumnBlock":
        """Intern freshly built value columns (all the same length) into a block.

        ``length`` is required for 0-ary blocks (no columns to measure): a
        projection that keeps no attributes still distinguishes "some row
        survived" from "no row survived" — the relational true/false
        boundary — so the row count cannot be inferred from an empty
        column dict.
        """
        attributes = tuple(attributes)
        lengths = {len(columns[attribute]) for attribute in attributes}
        if length is not None:
            lengths.add(length)
        if len(lengths) > 1:
            raise SchemaError(f"ragged columns for block {name!r}: lengths {sorted(lengths)}")
        interner = _INTERNER
        encoded = {attribute: interner.encode(columns[attribute])
                   for attribute in attributes}
        return cls(name, attributes,
                   _ColumnStorage(encoded, lengths.pop() if lengths else 0,
                                  interner))

    @classmethod
    def _from_ids(cls, name: str, attributes: KeyAttributes,
                  columns: Dict[Attribute, array], length: int,
                  interner: ValueInterner) -> "ColumnBlock":
        """Wrap already-encoded id arrays (the kernels' output constructor)."""
        return cls(name, attributes, _ColumnStorage(columns, length, interner))

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """The block's relation name (used when decoding)."""
        return self._name

    @property
    def attributes(self) -> KeyAttributes:
        """The visible attributes, in column order."""
        return self._attributes

    @property
    def attribute_set(self) -> FrozenSet[Attribute]:
        """The visible attributes as a frozenset (the hypergraph edge)."""
        return self._attribute_set

    @property
    def schema(self) -> RelationSchema:
        """The block's scheme as a :class:`RelationSchema` (lazily built)."""
        if self._schema is None:
            self._schema = RelationSchema(self._name, self._attributes)
        return self._schema

    @property
    def positions(self) -> Sequence[int]:
        """The selected storage positions, in selection order."""
        if self._sel is not None:
            return self._sel
        return range(self._storage.length)

    @property
    def interner(self) -> ValueInterner:
        """The interner this block's ids decode through (generation identity)."""
        return self._storage.interner

    def __len__(self) -> int:
        return len(self._sel) if self._sel is not None else self._storage.length

    def is_empty(self) -> bool:
        """``True`` when no rows are selected."""
        return len(self) == 0

    def column(self, attribute: Attribute) -> array:
        """The *full-length* id array of one column (index by positions)."""
        if attribute not in self._attribute_set:
            raise UnknownAttributeError(attribute)
        return self._storage.columns[attribute]

    def decoded_column(self, attribute: Attribute) -> List[Any]:
        """The *full-length* original values of one column (cached on the storage)."""
        if attribute not in self._attribute_set:
            raise UnknownAttributeError(attribute)
        return self._storage.decoded_column(attribute)

    def value_at(self, attribute: Attribute, position: int) -> Any:
        """The original value at one storage position (a point decode)."""
        if attribute not in self._attribute_set:
            raise UnknownAttributeError(attribute)
        return self._storage.interner.values[
            self._storage.columns[attribute][position]]

    def key_codes(self, attributes: KeyAttributes) -> array:
        """Full-length encoded key ids for a key-attribute tuple (storage-cached)."""
        for attribute in attributes:
            if attribute not in self._attribute_set:
                raise UnknownAttributeError(attribute)
        return self._storage.key_codes(attributes)

    def key_groups(self, attributes: KeyAttributes) -> Dict[int, Tuple[int, ...]]:
        """Selected positions grouped by encoded key id (storage-cached)."""
        for attribute in attributes:
            if attribute not in self._attribute_set:
                raise UnknownAttributeError(attribute)
        return self._storage.groups_for(attributes, self._sel)

    def key_code_set(self, attributes: KeyAttributes) -> FrozenSet[int]:
        """The distinct encoded key ids present among the selected rows.

        Selection-aware and storage-cached: warm reducer fixpoint steps (and
        the subset/disjointness fast paths built on these sets) rebuild
        nothing, whether the block is a base relation or a reduced view of
        one — a warm run's identical selection bytes hit the same entry.
        """
        for attribute in attributes:
            if attribute not in self._attribute_set:
                raise UnknownAttributeError(attribute)
        return self._storage.key_set_for(attributes, self._sel)

    def prepared_key_set(self, attributes: KeyAttributes, backend) -> Any:
        """The backend's membership structure over the selected key ids (cached)."""
        return self._storage.prepared_set_for(attributes, self._sel, backend)

    def join_table(self, attributes: KeyAttributes, backend) -> Any:
        """The backend's join build table over the selected positions (cached)."""
        return self._storage.table_for(attributes, self._sel, backend)

    @property
    def source_rows(self) -> Optional[Tuple[Row, ...]]:
        """The original ``Row`` objects (only on blocks built from a relation)."""
        return self._storage.source_rows

    # ------------------------------------------------------------------ #
    # Cross-block derived caching (the kernels' warm-run result cache)
    # ------------------------------------------------------------------ #
    def selection_bytes(self) -> Optional[bytes]:
        """The selection vector's bytes (``None`` = all positions) — a value key.

        Two blocks over one storage with equal selection bytes select the
        same rows in the same order, so kernel results computed from one are
        valid for the other — this is what lets a warm re-execution, which
        rebuilds fresh but identical selections, reuse every cached result.
        """
        return None if self._sel is None else self._sel.tobytes()

    def storage_token(self) -> object:
        """An identity token for this block's storage, for cross-block cache keys."""
        return self._storage

    def derived_get(self, key: Tuple) -> Any:
        """Look up a kernel-level derived result cached on this block's storage."""
        return self._storage._derived_get(key)

    def derived_put(self, key: Tuple, value: Any) -> Any:
        """Cache a kernel-level derived result on this block's storage."""
        return self._storage._derived_put(key, value)

    # ------------------------------------------------------------------ #
    # Zero-copy derivations
    # ------------------------------------------------------------------ #
    def select(self, positions: Iterable[int]) -> "ColumnBlock":
        """The block restricted to the given storage positions (zero-copy).

        Passing this block's own selection vector (the kernels' fixpoint
        case) returns ``self`` — no new block, no re-materialised positions.
        """
        if positions is self._sel:
            return self
        if type(positions) is not array:
            positions = array("q", positions)
        return ColumnBlock(self._name, self._attributes, self._storage, positions)

    def empty(self) -> "ColumnBlock":
        """The empty block over the same scheme (zero-copy)."""
        return ColumnBlock(self._name, self._attributes, self._storage,
                           array("q"))

    def rename(self, name: str) -> "ColumnBlock":
        """The same block under a different relation name (zero-copy)."""
        return ColumnBlock(name, self._attributes, self._storage, self._sel)

    def with_column_order(self, attributes: Iterable[Attribute]) -> "ColumnBlock":
        """The same rows with the visible columns permuted (zero-copy).

        The attribute *set* must be unchanged — this only picks a different
        display/decode order over the shared storage.  Used at the result
        boundary to canonicalise output column order, which is what makes
        per-shard results (whose fold orders are annotation-dependent)
        merge into a byte-identical whole.
        """
        attributes = tuple(attributes)
        if attributes == self._attributes:
            return self
        if frozenset(attributes) != self._attribute_set or \
                len(attributes) != len(self._attributes):
            raise SchemaError(
                f"with_column_order expects a permutation of {self._attributes}, "
                f"got {attributes}")
        return ColumnBlock(self._name, attributes, self._storage, self._sel)

    def project_onto(self, keep: Iterable[Attribute]) -> "ColumnBlock":
        """Keep only the listed attributes, in this block's column order (zero-copy).

        Projection alone can introduce duplicate rows; callers that need set
        semantics follow up with :meth:`distinct` — the two are split so the
        reducer/join phases only pay deduplication where the row engine does.
        """
        wanted = frozenset(keep)
        missing = wanted - self._attribute_set
        if missing:
            raise UnknownAttributeError(sorted_nodes(missing)[0])
        order = tuple(a for a in self._attributes if a in wanted)
        return ColumnBlock(self._name, order, self._storage, self._sel)

    def distinct(self) -> "ColumnBlock":
        """The block with duplicate (visible) rows removed, first occurrence kept.

        Returns ``self`` when the selected rows are already distinct, so
        fixpoints allocate nothing.  Runs on the active column backend.
        """
        count = len(self)
        if not self._attributes:
            # 0-ary: every surviving position is the same (empty) row.
            if count <= 1:
                return self
            return self.select(array("q", [next(iter(self.positions))]))
        keep = active_column_backend().first_occurrence(
            [self._storage.columns[attribute] for attribute in self._attributes],
            self.positions)
        if len(keep) == count:
            return self
        return self.select(keep)

    # ------------------------------------------------------------------ #
    # Decode boundary
    # ------------------------------------------------------------------ #
    def row_values(self, position: int) -> Tuple[Any, ...]:
        """The values of one storage position, in column order."""
        values = self._storage.interner.values
        return tuple(values[self._storage.columns[attribute][position]]
                     for attribute in self._attributes)

    def iter_rows(self) -> Iterator[Tuple[Any, ...]]:
        """The selected rows as plain value tuples, in column order."""
        decoded = [self._storage.decoded_column(attribute)
                   for attribute in self._attributes]
        for position in self.positions:
            yield tuple(column[position] for column in decoded)

    def to_relation(self, name: Optional[str] = None) -> Relation:
        """Decode the block back into a :class:`Relation` (the result boundary).

        Rows are assembled directly in canonical attribute order through
        :meth:`Row._from_sorted_items <repro.relational.relation.Row>` — no
        per-row dict build, no per-row re-sort.
        """
        attributes = self._attributes
        schema = RelationSchema(name or self._name, attributes)
        if not attributes:
            rows = frozenset([Row._from_sorted_items(())] if len(self) else [])
            return Relation.from_valid_rows(schema, rows)
        ordered = tuple(sorted_nodes(attributes))
        decoded = [self._storage.decoded_column(attribute)
                   for attribute in ordered]
        from_items = Row._from_sorted_items
        rows = frozenset(
            from_items(tuple(zip(ordered, values)))
            for values in zip(*(
                [column[position] for position in self.positions]
                for column in decoded)))
        return Relation.from_valid_rows(schema, rows)

    def __reduce__(self):
        """Pickle as (name, attributes, storage, selection bytes).

        The storage is pickled through its own ``__reduce__`` (dense local
        ids + vocabulary); pickle memoisation keeps storages shared, so a
        payload of many blocks over one storage ships the id arrays once.
        """
        return (_rebuild_block, (self._name, self._attributes, self._storage,
                                 self.selection_bytes()))

    def __repr__(self) -> str:
        names = ", ".join(str(a) for a in self._attributes)
        return f"ColumnBlock({self._name}({names}), {len(self)} rows)"


# --------------------------------------------------------------------------- #
# Per-relation block cache
# --------------------------------------------------------------------------- #
# Relations are immutable, so a block encoding never goes stale; the weak
# dictionary lets relations (and their blocks) be reclaimed together.  The
# lock keeps the WeakKeyDictionary (not thread-safe under concurrent
# mutation) and the hit/miss counters coherent across concurrent executes;
# encoding itself runs outside the lock — two threads racing on the same
# cold relation may both encode (blocks are immutable and interchangeable;
# the first insert wins), which trades a little duplicate work for never
# blocking the cache on a large scan.  The per-storage derived caches are
# deliberately lock-free for the same reason: a race rebuilds an equivalent
# structure and last-write-wins.
_BLOCK_CACHE: "weakref.WeakKeyDictionary[Relation, ColumnBlock]" = weakref.WeakKeyDictionary()
_BLOCK_CACHE_LOCK = threading.Lock()
_BLOCK_HITS = 0
_BLOCK_MISSES = 0


def block_for(relation: Relation) -> ColumnBlock:
    """The (cached) columnar encoding of ``relation``."""
    global _BLOCK_HITS, _BLOCK_MISSES
    with _BLOCK_CACHE_LOCK:
        cached = _BLOCK_CACHE.get(relation)
        if cached is not None:
            _BLOCK_HITS += 1
            return cached
        _BLOCK_MISSES += 1
    block = ColumnBlock.from_relation(relation)
    with _BLOCK_CACHE_LOCK:
        return _BLOCK_CACHE.setdefault(relation, block)


def peek_block(relation: Relation) -> Optional[ColumnBlock]:
    """The cached block of ``relation``, or ``None`` (no build, no counter bump)."""
    with _BLOCK_CACHE_LOCK:
        return _BLOCK_CACHE.get(relation)


def column_cache_info() -> Dict[str, int]:
    """Cumulative counters of the block cache and the key-id-set cache.

    ``hits``/``misses``/``relations`` describe the per-relation block cache;
    ``keyset_hits``/``keyset_misses`` count selection-aware key-id-set
    lookups on block storages — the structure every semijoin fast path and
    membership probe starts from, so warm prepared-query runs should be
    nearly all hits.
    """
    with _BLOCK_CACHE_LOCK:
        return {"hits": _BLOCK_HITS, "misses": _BLOCK_MISSES,
                "relations": len(_BLOCK_CACHE),
                "keyset_hits": _KEYSET_HITS, "keyset_misses": _KEYSET_MISSES}


def clear_column_caches() -> None:
    """Drop the block cache, reset counters, and start a fresh interner generation.

    Derived key structures live on the block storages themselves, so they
    are reclaimed with their blocks.  Blocks that outlive the clear keep a
    reference to their own interner and still decode; they simply cannot be
    combined with blocks encoded after the clear (the kernels reject mixed
    generations).
    """
    global _BLOCK_HITS, _BLOCK_MISSES, _KEYSET_HITS, _KEYSET_MISSES, _INTERNER
    with _BLOCK_CACHE_LOCK:
        _BLOCK_CACHE.clear()
        _BLOCK_HITS = 0
        _BLOCK_MISSES = 0
        _KEYSET_HITS = 0
        _KEYSET_MISSES = 0
        _INTERNER = ValueInterner()
