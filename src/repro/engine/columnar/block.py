"""Columnar blocks: per-attribute value arrays with positional selection vectors.

A :class:`ColumnBlock` is the columnar physical representation of a relation:
one value array per attribute plus an optional *selection vector* of storage
positions.  Filtering a block (semijoin, antijoin) only replaces the selection
vector; projecting or renaming it only changes the visible column set — the
underlying :class:`_ColumnStorage` (and everything cached on it: grouped key
encodings, key-group indexes) is shared zero-copy by every derived block.

**Grouped key encoding** is what makes whole-block kernels cheap: for a tuple
of key attributes, every row's key is encoded exactly once into a cached
per-storage array (the bare column value for single-attribute keys, a
canonical-order tuple otherwise) and grouped into a position index.  Equal
keys in *different* blocks encode to equal values, so a semijoin degenerates
to set membership over two cached key arrays and a hash join groups
positions by key — no per-row attribute lookups on the warm path, and no
shared mutable state between blocks.

Blocks built from relations are cached weakly per relation instance
(:func:`block_for`), mirroring the row engine's
:func:`~repro.engine.indexes.index_for` cache, so repeated executions over
one database encode each stored relation exactly once.

The process-wide **execution mode** switch also lives here:
``"columnar"`` (the default) runs the engine's physical layer on blocks,
``"row"`` keeps the original row-at-a-time operators as the reference
implementation for differential testing.
"""

from __future__ import annotations

import threading
import weakref
from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from ...core.nodes import sorted_nodes
from ...exceptions import SchemaError, UnknownAttributeError
from ...relational.relation import Relation, Row
from ...relational.schema import Attribute, RelationSchema

__all__ = [
    "ColumnBlock",
    "block_for",
    "peek_block",
    "column_cache_info",
    "clear_column_caches",
    "EXECUTION_MODES",
    "default_execution_mode",
    "set_default_execution_mode",
    "resolve_execution_mode",
]

KeyAttributes = Tuple[Attribute, ...]

# --------------------------------------------------------------------------- #
# Execution mode
# --------------------------------------------------------------------------- #
EXECUTION_MODES = ("columnar", "row")

_DEFAULT_MODE = "columnar"


def default_execution_mode() -> str:
    """The process-wide physical execution mode (``"columnar"`` unless overridden)."""
    return _DEFAULT_MODE


def set_default_execution_mode(mode: str) -> str:
    """Set the process-wide execution mode; return the previous one.

    Used by differential tests and benchmarks to flip the whole engine
    between the columnar and the row reference implementation without
    threading an option through every call site.
    """
    global _DEFAULT_MODE
    if mode not in EXECUTION_MODES:
        raise ValueError(f"unknown execution mode {mode!r}; "
                         f"expected one of {EXECUTION_MODES}")
    previous = _DEFAULT_MODE
    _DEFAULT_MODE = mode
    return previous


def resolve_execution_mode(mode: Optional[str]) -> str:
    """``None`` → the process default; anything else is validated and returned."""
    if mode is None:
        return _DEFAULT_MODE
    if mode not in EXECUTION_MODES:
        raise ValueError(f"unknown execution mode {mode!r}; "
                         f"expected one of {EXECUTION_MODES}")
    return mode


class _ColumnStorage:
    """The shared, immutable column arrays one or more blocks view.

    ``key_codes`` and ``key_groups`` memoise the grouped key encoding per
    key-attribute tuple: every selection-vector block derived from this
    storage reuses them, which is where the warm-path win comes from.  The
    encoding is *value-based* (the bare column value for a single key
    attribute, a canonical-order tuple otherwise): encodings of different
    storages never share state, yet equal keys encode equal — so the arrays
    compare across blocks, are immune to concurrent encoding races, and die
    with their storage instead of accumulating process-wide.
    """

    __slots__ = ("columns", "length", "source_rows", "_code_cache", "_group_cache",
                 "_set_cache")

    def __init__(self, columns: Dict[Attribute, List[Any]], length: int,
                 source_rows: Optional[Tuple[Row, ...]] = None) -> None:
        self.columns = columns
        self.length = length
        self.source_rows = source_rows
        self._code_cache: Dict[KeyAttributes, List[Any]] = {}
        self._group_cache: Dict[KeyAttributes, Dict[Any, Tuple[int, ...]]] = {}
        self._set_cache: Dict[KeyAttributes, FrozenSet[Any]] = {}

    def key_codes(self, attributes: KeyAttributes) -> List[Any]:
        """One encoded key per storage position (cached per attribute tuple)."""
        cached = self._code_cache.get(attributes)
        if cached is not None:
            return cached
        if len(attributes) == 1:
            codes: List[Any] = self.columns[attributes[0]]
        else:
            codes = list(zip(*(self.columns[attribute] for attribute in attributes)))
        self._code_cache[attributes] = codes
        return codes

    def key_groups(self, attributes: KeyAttributes) -> Dict[Any, Tuple[int, ...]]:
        """All storage positions grouped by encoded key (cached per attribute tuple)."""
        cached = self._group_cache.get(attributes)
        if cached is not None:
            return cached
        codes = self.key_codes(attributes)
        grouped: Dict[Any, List[int]] = {}
        for position, code in enumerate(codes):
            bucket = grouped.get(code)
            if bucket is None:
                grouped[code] = [position]
            else:
                bucket.append(position)
        groups = {code: tuple(positions) for code, positions in grouped.items()}
        self._group_cache[attributes] = groups
        return groups

    def key_set(self, attributes: KeyAttributes) -> FrozenSet[Any]:
        """The distinct encoded keys over all positions (cached per attribute tuple)."""
        cached = self._set_cache.get(attributes)
        if cached is None:
            cached = self._set_cache[attributes] = frozenset(self.key_codes(attributes))
        return cached


class ColumnBlock:
    """A columnar view of a relation: shared columns + a positional selection.

    Blocks are immutable; every operation returns a new block.  ``project``,
    ``rename`` and ``select`` are zero-copy (they share the storage), so the
    reducer's semijoin fixpoints and the join phase's fused projections never
    duplicate value arrays.
    """

    __slots__ = ("_name", "_attributes", "_attribute_set", "_storage", "_sel",
                 "_schema")

    def __init__(self, name: str, attributes: KeyAttributes,
                 storage: _ColumnStorage,
                 selection: Optional[Tuple[int, ...]] = None) -> None:
        self._name = name
        self._attributes = attributes
        self._attribute_set: FrozenSet[Attribute] = frozenset(attributes)
        self._storage = storage
        self._sel = selection
        self._schema: Optional[RelationSchema] = None

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_relation(cls, relation: Relation) -> "ColumnBlock":
        """Encode a relation into columns (one pass over its rows).

        The source rows are retained on the storage so the row engine's
        :meth:`HashIndex.build_columnar
        <repro.engine.indexes.HashIndex.build_columnar>` path can bucket the
        *original* ``Row`` objects by encoded key without re-materialising
        them.
        """
        attributes = relation.schema.attributes
        rows = tuple(relation.rows)
        columns: Dict[Attribute, List[Any]] = {attribute: [] for attribute in attributes}
        appenders = [(columns[attribute].append, attribute) for attribute in attributes]
        for row in rows:
            for append, attribute in appenders:
                append(row[attribute])
        storage = _ColumnStorage(columns, len(rows), source_rows=rows)
        return cls(relation.name, attributes, storage)

    @classmethod
    def from_columns(cls, name: str, attributes: Iterable[Attribute],
                     columns: Dict[Attribute, List[Any]], *,
                     length: Optional[int] = None) -> "ColumnBlock":
        """Wrap freshly built column arrays (all the same length) in a block.

        ``length`` is required for 0-ary blocks (no columns to measure): a
        projection that keeps no attributes still distinguishes "some row
        survived" from "no row survived" — the relational true/false
        boundary — so the row count cannot be inferred from an empty
        column dict.
        """
        attributes = tuple(attributes)
        lengths = {len(columns[attribute]) for attribute in attributes}
        if length is not None:
            lengths.add(length)
        if len(lengths) > 1:
            raise SchemaError(f"ragged columns for block {name!r}: lengths {sorted(lengths)}")
        return cls(name, attributes,
                   _ColumnStorage(dict(columns), lengths.pop() if lengths else 0))

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """The block's relation name (used when decoding)."""
        return self._name

    @property
    def attributes(self) -> KeyAttributes:
        """The visible attributes, in column order."""
        return self._attributes

    @property
    def attribute_set(self) -> FrozenSet[Attribute]:
        """The visible attributes as a frozenset (the hypergraph edge)."""
        return self._attribute_set

    @property
    def schema(self) -> RelationSchema:
        """The block's scheme as a :class:`RelationSchema` (lazily built)."""
        if self._schema is None:
            self._schema = RelationSchema(self._name, self._attributes)
        return self._schema

    @property
    def positions(self) -> Sequence[int]:
        """The selected storage positions, in selection order."""
        if self._sel is not None:
            return self._sel
        return range(self._storage.length)

    def __len__(self) -> int:
        return len(self._sel) if self._sel is not None else self._storage.length

    def is_empty(self) -> bool:
        """``True`` when no rows are selected."""
        return len(self) == 0

    def column(self, attribute: Attribute) -> List[Any]:
        """The *full-length* storage array of one column (index by positions)."""
        if attribute not in self._attribute_set:
            raise UnknownAttributeError(attribute)
        return self._storage.columns[attribute]

    def key_codes(self, attributes: KeyAttributes) -> List[Any]:
        """Full-length encoded keys for a key-attribute tuple (storage-cached)."""
        for attribute in attributes:
            if attribute not in self._attribute_set:
                raise UnknownAttributeError(attribute)
        return self._storage.key_codes(attributes)

    def key_groups(self, attributes: KeyAttributes) -> Dict[Any, Tuple[int, ...]]:
        """Selected positions grouped by encoded key.

        With no selection vector the storage-level grouping is returned
        (and cached); a selected block groups only its visible positions.
        """
        for attribute in attributes:
            if attribute not in self._attribute_set:
                raise UnknownAttributeError(attribute)
        if self._sel is None:
            return self._storage.key_groups(attributes)
        codes = self._storage.key_codes(attributes)
        grouped: Dict[Any, List[int]] = {}
        for position in self._sel:
            code = codes[position]
            bucket = grouped.get(code)
            if bucket is None:
                grouped[code] = [position]
            else:
                bucket.append(position)
        return {code: tuple(positions) for code, positions in grouped.items()}

    def key_code_set(self, attributes: KeyAttributes) -> FrozenSet[Any]:
        """The distinct encoded keys present among the selected rows.

        Storage-cached for unselected blocks, so warm reducer fixpoint steps
        against base relations rebuild nothing; a selected block's set is
        derived from the cached key array per call.
        """
        for attribute in attributes:
            if attribute not in self._attribute_set:
                raise UnknownAttributeError(attribute)
        if self._sel is None:
            return self._storage.key_set(attributes)
        codes = self._storage.key_codes(attributes)
        return frozenset(codes[position] for position in self._sel)

    @property
    def source_rows(self) -> Optional[Tuple[Row, ...]]:
        """The original ``Row`` objects (only on blocks built from a relation)."""
        return self._storage.source_rows

    # ------------------------------------------------------------------ #
    # Zero-copy derivations
    # ------------------------------------------------------------------ #
    def select(self, positions: Tuple[int, ...]) -> "ColumnBlock":
        """The block restricted to the given storage positions (zero-copy)."""
        return ColumnBlock(self._name, self._attributes, self._storage, positions)

    def empty(self) -> "ColumnBlock":
        """The empty block over the same scheme (zero-copy)."""
        return self.select(())

    def rename(self, name: str) -> "ColumnBlock":
        """The same block under a different relation name (zero-copy)."""
        return ColumnBlock(name, self._attributes, self._storage, self._sel)

    def project_onto(self, keep: Iterable[Attribute]) -> "ColumnBlock":
        """Keep only the listed attributes, in this block's column order (zero-copy).

        Projection alone can introduce duplicate rows; callers that need set
        semantics follow up with :meth:`distinct` — the two are split so the
        reducer/join phases only pay deduplication where the row engine does.
        """
        wanted = frozenset(keep)
        missing = wanted - self._attribute_set
        if missing:
            raise UnknownAttributeError(sorted_nodes(missing)[0])
        order = tuple(a for a in self._attributes if a in wanted)
        return ColumnBlock(self._name, order, self._storage, self._sel)

    def distinct(self) -> "ColumnBlock":
        """The block with duplicate (visible) rows removed, first occurrence kept.

        Returns ``self`` when the selected rows are already distinct, so
        fixpoints allocate nothing.
        """
        columns = [self._storage.columns[attribute] for attribute in self._attributes]
        seen: set = set()
        keep: List[int] = []
        if len(columns) == 1:
            column = columns[0]
            for position in self.positions:
                value = column[position]
                if value not in seen:
                    seen.add(value)
                    keep.append(position)
        else:
            for position in self.positions:
                key = tuple(column[position] for column in columns)
                if key not in seen:
                    seen.add(key)
                    keep.append(position)
        if len(keep) == len(self):
            return self
        return self.select(tuple(keep))

    # ------------------------------------------------------------------ #
    # Decode boundary
    # ------------------------------------------------------------------ #
    def row_values(self, position: int) -> Tuple[Any, ...]:
        """The values of one storage position, in column order."""
        return tuple(self._storage.columns[attribute][position]
                     for attribute in self._attributes)

    def iter_rows(self) -> Iterator[Tuple[Any, ...]]:
        """The selected rows as plain value tuples, in column order."""
        columns = [self._storage.columns[attribute] for attribute in self._attributes]
        for position in self.positions:
            yield tuple(column[position] for column in columns)

    def to_relation(self, name: Optional[str] = None) -> Relation:
        """Decode the block back into a :class:`Relation` (the result boundary)."""
        attributes = self._attributes
        schema = RelationSchema(name or self._name, attributes)
        rows = frozenset(Row(dict(zip(attributes, values)))
                         for values in self.iter_rows())
        return Relation.from_valid_rows(schema, rows)

    def __repr__(self) -> str:
        names = ", ".join(str(a) for a in self._attributes)
        return f"ColumnBlock({self._name}({names}), {len(self)} rows)"


# --------------------------------------------------------------------------- #
# Per-relation block cache
# --------------------------------------------------------------------------- #
# Relations are immutable, so a block encoding never goes stale; the weak
# dictionary lets relations (and their blocks) be reclaimed together.  The
# lock keeps the WeakKeyDictionary (not thread-safe under concurrent
# mutation) and the hit/miss counters coherent across concurrent executes;
# encoding itself runs outside the lock — two threads racing on the same
# cold relation may both encode (blocks are immutable and interchangeable;
# the first insert wins), which trades a little duplicate work for never
# blocking the cache on a large scan.  The per-storage key-encoding caches
# are deliberately lock-free for the same reason: a race rebuilds an
# equivalent array and last-write-wins.
_BLOCK_CACHE: "weakref.WeakKeyDictionary[Relation, ColumnBlock]" = weakref.WeakKeyDictionary()
_BLOCK_CACHE_LOCK = threading.Lock()
_BLOCK_HITS = 0
_BLOCK_MISSES = 0


def block_for(relation: Relation) -> ColumnBlock:
    """The (cached) columnar encoding of ``relation``."""
    global _BLOCK_HITS, _BLOCK_MISSES
    with _BLOCK_CACHE_LOCK:
        cached = _BLOCK_CACHE.get(relation)
        if cached is not None:
            _BLOCK_HITS += 1
            return cached
        _BLOCK_MISSES += 1
    block = ColumnBlock.from_relation(relation)
    with _BLOCK_CACHE_LOCK:
        return _BLOCK_CACHE.setdefault(relation, block)


def peek_block(relation: Relation) -> Optional[ColumnBlock]:
    """The cached block of ``relation``, or ``None`` (no build, no counter bump)."""
    with _BLOCK_CACHE_LOCK:
        return _BLOCK_CACHE.get(relation)


def column_cache_info() -> Dict[str, int]:
    """Cumulative hit/miss counters of the per-relation block cache."""
    with _BLOCK_CACHE_LOCK:
        return {"hits": _BLOCK_HITS, "misses": _BLOCK_MISSES,
                "relations": len(_BLOCK_CACHE)}


def clear_column_caches() -> None:
    """Drop the per-relation block cache and reset its counters (tests/benchmarks).

    Key encodings live on the block storages themselves, so they are
    reclaimed with their blocks — there is no process-wide encoding state
    to clear.
    """
    global _BLOCK_HITS, _BLOCK_MISSES
    with _BLOCK_CACHE_LOCK:
        _BLOCK_CACHE.clear()
        _BLOCK_HITS = 0
        _BLOCK_MISSES = 0
