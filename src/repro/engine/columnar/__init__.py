"""``repro.engine.columnar`` — the engine's columnar physical layer.

Every physical operator of the original engine materialises per-tuple
:class:`~repro.relational.relation.Row` objects and probes them with
attribute-keyed lookups.  This package replaces that object-at-a-time
interpretation with vectorized, cache-friendly kernels over
:class:`ColumnBlock` values — per-attribute value arrays plus positional
selection vectors — and decodes back to relations only at the result
boundary:

* :mod:`~repro.engine.columnar.block` — :class:`ColumnBlock` with zero-copy
  project/rename/select, grouped key encoding (per-storage cached key
  arrays and position groups in canonical attribute order, so keys compare
  across blocks with no shared state), the weak per-relation block cache
  (:func:`block_for`), and the process-wide execution-mode switch;
* :mod:`~repro.engine.columnar.kernels` — whole-block semijoin / antijoin /
  natural join with fused projection, plus scheme merging;
* :mod:`~repro.engine.columnar.executor` — the end-to-end pipeline (reduce
  the vertex blocks, fold the join tree bottom-up, decode last) shared by
  the acyclic evaluator and the cyclic executor, plus exact columnar-side
  statistics measurement for the adaptive quotient catalog.

The engine runs columnar by default; ``execution_mode="row"`` (on
:class:`~repro.engine.session.ExecutionOptions` or any evaluator entry
point) keeps the original row-at-a-time operators as the reference
implementation for differential testing.
"""

from .buffers import (
    COLUMN_BACKENDS,
    ArrayColumnBackend,
    NumpyColumnBackend,
    ValueInterner,
    active_column_backend,
    available_column_backends,
    default_column_backend,
    resolve_column_backend,
    set_default_column_backend,
    use_column_backend,
)
from .block import (
    EXECUTION_MODES,
    ColumnBlock,
    block_for,
    clear_column_caches,
    column_cache_info,
    current_interner,
    default_execution_mode,
    peek_block,
    resolve_execution_mode,
    set_default_execution_mode,
)
from .kernels import (
    antijoin_blocks,
    intersect_blocks,
    merge_blocks_by_scheme,
    natural_join_blocks,
    semijoin_blocks,
    shared_block_attributes,
)
from .executor import (
    catalog_from_blocks,
    run_columnar_plan,
    statistics_from_block,
    vertex_blocks,
)

__all__ = [
    # blocks + caches + mode switch
    "ColumnBlock", "block_for", "peek_block",
    "column_cache_info", "clear_column_caches", "current_interner",
    "EXECUTION_MODES", "default_execution_mode", "set_default_execution_mode",
    "resolve_execution_mode",
    # typed buffers + backends
    "ValueInterner", "ArrayColumnBackend", "NumpyColumnBackend",
    "COLUMN_BACKENDS", "available_column_backends",
    "default_column_backend", "set_default_column_backend",
    "resolve_column_backend", "active_column_backend", "use_column_backend",
    # kernels
    "semijoin_blocks", "antijoin_blocks", "natural_join_blocks",
    "intersect_blocks", "merge_blocks_by_scheme", "shared_block_attributes",
    # pipeline
    "vertex_blocks", "run_columnar_plan",
    "catalog_from_blocks", "statistics_from_block",
]
