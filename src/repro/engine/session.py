"""The unified engine facade: sessions, prepared queries and batched execution.

Three PRs grew a real query processor whose public surface was an accretion
of entry points — ``evaluate`` / ``evaluate_database`` / ``evaluate_cyclic``
/ ``evaluate_cyclic_database``, ``ConjunctiveQuery.evaluate(engine=…,
adaptive=…)``, ``plan_for`` / ``cyclic_plan_for`` / ``annotate`` — each
re-threading ``catalog=``/``adaptive=`` plumbing on every call.  Maier &
Ullman's framing is that the *system*, not the user, picks the relevant
objects and the join strategy; this module makes that one intelligent entry
point concrete:

* :class:`ExecutionOptions` — one immutable config object replacing the
  scattered keyword arguments, merged along a clear precedence chain
  (session defaults < an explicit ``options=`` object < keyword overrides);
* :class:`EngineSession` — owns a (thread-safe) :class:`QueryPlanner`, the
  per-database :class:`~repro.engine.catalog.StatisticsCatalog` lifecycle,
  and plan-cache persistence (:meth:`~EngineSession.save` /
  :meth:`~EngineSession.load`);
* :class:`PreparedQuery` — ``session.prepare(source)`` resolves the
  acyclic-vs-cyclic dispatch, the structure plan and (per database) the cost
  annotation **exactly once**; warm :meth:`~PreparedQuery.execute` calls do
  zero cover search, zero structure planning and zero re-annotation for an
  unchanged database;
* :meth:`PreparedQuery.execute_many` — batched execution over many
  databases (shared hash indexes, one catalog refresh per database) with the
  per-run accounting aggregated into a :class:`BatchStatistics`.

The legacy module-level entry points live on as deprecated shims (see
:func:`legacy_evaluate` and friends) that route through the default session,
so existing callers keep working while new code migrates.
"""

from __future__ import annotations

import threading
import warnings
import weakref
from collections import OrderedDict
from dataclasses import dataclass, fields, replace
from time import perf_counter
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.hypergraph import Edge, Hypergraph
from ..exceptions import SchemaError, CyclicHypergraphError
from ..relational.database import Database
from ..relational.relation import Relation
from ..relational.schema import Attribute, DatabaseSchema
from ..telemetry.explain import ExplainAnalysis, build_explain_analysis
from ..telemetry.metrics import MetricsRegistry, global_registry
from ..telemetry.monitor import MonitorConfig, SessionMonitor
from ..telemetry.tracing import (
    NULL_TRACER,
    Tracer,
    current_span_tags,
    current_tracer,
    merge_phase_times,
    use_tracer,
)
from .catalog import StatisticsCatalog
from .deadline import deadline_scope
from .columnar.block import column_cache_info
from .planner import (
    DEFAULT_PLANNER,
    AnnotatedPlan,
    ExecutionPlan,
    PlanCacheInfo,
    QueryPlanner,
    fingerprint_digest,
    schema_fingerprint,
)
from . import yannakakis as _yannakakis

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from ..queries.conjunctive import ConjunctiveQuery
    from .cyclic.plans import CyclicExecutionPlan

__all__ = [
    "ExecutionOptions",
    "PreparedQuery",
    "BatchStatistics",
    "ExecutionBatch",
    "EngineSession",
    "default_session",
    "legacy_evaluate",
    "legacy_evaluate_database",
    "legacy_evaluate_cyclic",
    "legacy_evaluate_cyclic_database",
]

#: What ``prepare`` accepts: a conjunctive query, a database (its schema), a
#: database schema, a hypergraph, or a sequence of relations (their schemas).
PreparedSource = Union["ConjunctiveQuery", Database, DatabaseSchema,
                       Hypergraph, Sequence[Relation]]

#: How many schema-keyed prepared queries one session retains.
_PREPARED_CACHE_CAPACITY = 128

#: Sentinel distinguishing "not passed" from an explicit ``None`` sample limit.
_UNSET_SAMPLE_LIMIT: Optional[int] = object()  # type: ignore[assignment]


# --------------------------------------------------------------------------- #
# Options
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ExecutionOptions:
    """One immutable bundle of execution knobs, replacing scattered kwargs.

    Precedence when a query is prepared: the session's defaults, overridden
    by an explicit ``options=`` object, overridden by keyword arguments —
    later wins, field by field for the keywords and wholesale for the
    ``options=`` object.

    * ``adaptive`` — annotate plans with a per-database statistics catalog
      (cardinality-chosen root, cost-ordered semijoins and fold order);
    * ``root`` — pin the acyclic rooting instead of letting the annotation
      (or the structure default) choose;
    * ``check_reduction`` — run the reducer's proof-of-reduction hook
      (debug/audit; two extra semijoin scans per tree edge);
    * ``cluster_row_bound`` — cap intra-cluster intermediates on the cyclic
      path (:class:`~repro.exceptions.ClusterBoundExceededError` beyond it);
    * ``sample_limit`` — bound the rows scanned per relation when measuring
      statistics catalogs (the cheap sampling refresh);
    * ``force_cyclic`` — dispatch through the cyclic subsystem even for
      acyclic schemas (its cover degenerates to singletons);
    * ``execution_mode`` — the physical layer: ``"columnar"`` runs the
      vectorized block kernels and decodes to relations only at the result
      boundary, ``"row"`` is the row-at-a-time reference implementation,
      ``None`` (the default) inherits the process-wide default — columnar,
      unless :func:`~repro.engine.columnar.set_default_execution_mode`
      flipped it.  Answers are byte-identical across modes.
    * ``column_backend`` — the columnar compute backend: ``"array"`` (pure
      Python, always available) or ``"numpy"`` (when installed); ``None``
      inherits the process default (numpy when importable, else array; the
      ``REPRO_COLUMN_BACKEND`` environment variable overrides).  Backends
      change compute, never results.
    * ``decode`` — how results cross the engine boundary: ``"rows"``
      (default) decodes eagerly into a :class:`Relation`; ``"block"``
      (columnar only) skips the decode phase and defers it to
      ``result.decoded()`` — the win for callers that only need counts,
      emptiness, or re-feed blocks into further columnar work.
    * ``trace`` — record spans of every prepare/execute into the owning
      session's :class:`~repro.telemetry.tracing.Tracer` when no ambient
      tracer is already active.  Off by default: the untraced hot path pays
      only null-tracer pointer checks.  An explicitly installed tracer
      (:func:`~repro.telemetry.tracing.use_tracer`) always wins, so
      ``explain(analyze=True)`` and callers with their own sinks are never
      clobbered by this flag.
    * ``deadline_seconds`` — a wall-clock budget per execution.  Enforced
      cooperatively between engine phases (see :mod:`repro.engine.deadline`):
      a breach raises :class:`~repro.exceptions.ExecutionTimeoutError`, and a
      phase already running is never interrupted mid-flight, so the overshoot
      is bounded by the longest single phase.  ``None`` (default) = no limit.
    * ``shards`` — hash-partition each database on a join key into this many
      slices and run the full reducer + fold per shard in parallel, merging
      with dedup (see :mod:`repro.engine.sharded`).  Results are always
      identical to the unsharded run.  ``None`` (default) executes unsharded
      unless the ``REPRO_SHARDS`` environment variable sets a count.
    * ``shard_executor`` — how shards fan out: ``"thread"`` (in-process pool;
      the default) or ``"process"`` (long-lived worker processes fed pickled
      column-block payloads — the executor that escapes the GIL for
      pure-Python kernels).  ``None`` inherits ``REPRO_SHARD_EXECUTOR``.
    """

    adaptive: bool = True
    root: Optional[Edge] = None
    check_reduction: bool = False
    cluster_row_bound: Optional[int] = None
    sample_limit: Optional[int] = None
    force_cyclic: bool = False
    execution_mode: Optional[str] = None
    column_backend: Optional[str] = None
    decode: str = "rows"
    trace: bool = False
    deadline_seconds: Optional[float] = None
    shards: Optional[int] = None
    shard_executor: Optional[str] = None

    def __post_init__(self) -> None:
        from .columnar import COLUMN_BACKENDS, EXECUTION_MODES
        from .sharded.executor import SHARD_EXECUTORS
        from .yannakakis import DECODE_MODES

        if self.execution_mode is not None \
                and self.execution_mode not in EXECUTION_MODES:
            raise ValueError(f"unknown execution mode {self.execution_mode!r}; "
                             f"expected one of {EXECUTION_MODES} or None")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive (or None "
                             "for no deadline)")
        if self.column_backend is not None \
                and self.column_backend not in COLUMN_BACKENDS:
            raise ValueError(f"unknown column backend {self.column_backend!r}; "
                             f"expected one of {COLUMN_BACKENDS} or None")
        if self.decode not in DECODE_MODES:
            raise ValueError(f"unknown decode mode {self.decode!r}; "
                             f"expected one of {DECODE_MODES}")
        if self.decode == "block" and self.execution_mode == "row":
            raise ValueError('decode="block" requires the columnar '
                             'execution mode')
        if self.shards is not None and self.shards < 1:
            raise ValueError("shards must be at least 1 (or None for "
                             "unsharded execution)")
        if self.shard_executor is not None \
                and self.shard_executor not in SHARD_EXECUTORS:
            raise ValueError(f"unknown shard executor {self.shard_executor!r}; "
                             f"expected one of {SHARD_EXECUTORS} or None")

    def merged(self, **overrides: object) -> "ExecutionOptions":
        """A copy with the given fields replaced; unknown names raise ``TypeError``."""
        known = {field.name for field in fields(self)}
        unknown = set(overrides) - known
        if unknown:
            raise TypeError(f"unknown execution option(s) {sorted(unknown)}; "
                            f"expected a subset of {sorted(known)}")
        return replace(self, **overrides)

    @classmethod
    def resolve(cls, defaults: "ExecutionOptions",
                options: Optional["ExecutionOptions"],
                overrides: Dict[str, object]) -> "ExecutionOptions":
        """Apply the precedence chain: ``defaults`` < ``options`` < ``overrides``."""
        base = options if options is not None else defaults
        return base.merged(**overrides) if overrides else base


# --------------------------------------------------------------------------- #
# Batched statistics
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class BatchStatistics:
    """Per-database engine statistics aggregated across one ``execute_many``.

    Duck-type compatible with :class:`~repro.relational.join_plans.JoinStatistics`
    (``plan_name`` / ``input_sizes`` / ``intermediate_sizes`` / ``output_size``
    and the derived ``max_intermediate`` / ``total_intermediate``), so it
    drops into :func:`repro.analysis.reports.statistics_table` — which
    additionally recognises ``runs``/``labels`` and renders the per-database
    breakdown plus a totals row.
    """

    plan_name: str
    labels: Tuple[str, ...]
    runs: Tuple[object, ...]

    @classmethod
    def from_runs(cls, runs: Sequence[object], *,
                  labels: Optional[Sequence[str]] = None,
                  plan_name: str = "session-batch") -> "BatchStatistics":
        """Aggregate per-run statistics; labels default to ``db0, db1, …``."""
        if labels is None:
            labels = tuple(f"db{index}" for index in range(len(runs)))
        labels = tuple(labels)
        if len(labels) != len(runs):
            raise ValueError("one label per run is required")
        return cls(plan_name=plan_name, labels=labels, runs=tuple(runs))

    # -- JoinStatistics-compatible surface --------------------------------- #
    @property
    def input_sizes(self) -> Tuple[int, ...]:
        """Every run's input sizes, concatenated."""
        return tuple(size for run in self.runs for size in run.input_sizes)

    @property
    def intermediate_sizes(self) -> Tuple[int, ...]:
        """Every run's intermediate sizes, concatenated."""
        return tuple(size for run in self.runs for size in run.intermediate_sizes)

    @property
    def output_size(self) -> int:
        """Total rows returned across the batch."""
        return sum(run.output_size for run in self.runs)

    @property
    def max_intermediate(self) -> int:
        """The largest intermediate any run materialised."""
        return max((run.max_intermediate for run in self.runs), default=0)

    @property
    def total_intermediate(self) -> int:
        """The summed intermediate work across the batch."""
        return sum(run.total_intermediate for run in self.runs)

    # -- engine-statistics surface ----------------------------------------- #
    @property
    def semijoin_steps(self) -> int:
        """Total semijoin steps across the batch."""
        return sum(getattr(run, "semijoin_steps", 0) for run in self.runs)

    @property
    def rows_removed_by_reduction(self) -> int:
        """Total dangling rows removed across the batch."""
        return sum(getattr(run, "rows_removed_by_reduction", 0) for run in self.runs)

    @property
    def plan_cache_hit(self) -> bool:
        """``True`` when every run served its plan from cache."""
        return bool(self.runs) and all(getattr(run, "plan_cache_hit", False)
                                       for run in self.runs)

    @property
    def index_cache_hits(self) -> Optional[int]:
        """Total physical-structure cache hits (indexes/blocks) across the batch.

        ``None`` when no run carries the counter (e.g. a naive-only batch),
        so reports render "-" instead of a fabricated measured zero.
        """
        counted = [run.index_cache_hits for run in self.runs
                   if hasattr(run, "index_cache_hits")]
        return sum(counted) if counted else None

    @property
    def index_cache_misses(self) -> Optional[int]:
        """Total physical-structure cache misses across the batch (see hits)."""
        counted = [run.index_cache_misses for run in self.runs
                   if hasattr(run, "index_cache_misses")]
        return sum(counted) if counted else None

    @property
    def execution_mode(self) -> str:
        """The runs' physical execution mode.

        ``"mixed"`` when engine runs disagree; ``"-"`` when no run carries a
        mode at all (e.g. a batch of naive :class:`JoinStatistics`), so the
        table never fabricates a physical mode for plans that have none.
        """
        modes = {mode for mode in (getattr(run, "execution_mode", None)
                                   for run in self.runs) if mode is not None}
        if not modes:
            return "-"
        return modes.pop() if len(modes) == 1 else "mixed"

    @property
    def adaptive(self) -> bool:
        """``True`` when every run executed with a cost annotation."""
        return bool(self.runs) and all(getattr(run, "adaptive", False)
                                       for run in self.runs)

    @property
    def estimated_max_intermediate(self) -> Optional[int]:
        """The largest predicted intermediate, when every run was adaptive."""
        if not self.adaptive:
            return None
        estimates = [getattr(run, "estimated_max_intermediate", None)
                     for run in self.runs]
        return max((e for e in estimates if e is not None), default=0)

    @property
    def estimated_output_size(self) -> Optional[int]:
        """The summed predicted output, when every run predicted one."""
        if not self.adaptive:
            return None
        estimates = [getattr(run, "estimated_output_size", None) for run in self.runs]
        if any(estimate is None for estimate in estimates):
            return None
        return sum(estimates)

    @property
    def phase_times(self) -> Tuple[Tuple[str, float], ...]:
        """Per-phase wall-time summed across the batch (empty when untimed)."""
        return merge_phase_times(*(getattr(run, "phase_times", ()) or ()
                                   for run in self.runs))

    @property
    def elapsed_seconds(self) -> Optional[float]:
        """Total measured wall-time across the batch (``None`` when untimed)."""
        phases = self.phase_times
        if not phases:
            return None
        return sum(seconds for _, seconds in phases)

    @property
    def planner_hit_ratio(self) -> Optional[float]:
        """The last run's planner hit ratio (the batch-end state of the LRU)."""
        for run in reversed(self.runs):
            ratio = getattr(run, "planner_hit_ratio", None)
            if ratio is not None:
                return ratio
        return None

    def describe(self) -> str:
        """A one-line batch summary aligned with ``JoinStatistics.describe``."""
        summary = (f"{self.plan_name}: {len(self.runs)} databases "
                   f"inputs={sum(self.input_sizes)} max={self.max_intermediate} "
                   f"total_intermediate={self.total_intermediate} "
                   f"output={self.output_size} "
                   f"plan_cache={'hit' if self.plan_cache_hit else 'miss'}")
        elapsed = self.elapsed_seconds
        if elapsed is not None:
            phases = " ".join(f"{phase}={seconds * 1000:.2f}ms"
                              for phase, seconds in self.phase_times)
            summary += f" wall={elapsed * 1000:.2f}ms ({phases})"
        return summary


@dataclass(frozen=True)
class ExecutionBatch:
    """The results of one ``execute_many``: per-database results plus aggregates."""

    results: Tuple[object, ...]
    statistics: BatchStatistics

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int):
        return self.results[index]

    @property
    def relations(self) -> Tuple[Relation, ...]:
        """The per-database answer relations, in batch order.

        Decodes deferred (``decode="block"``) results on access, so batch
        callers see relations regardless of the decode option.
        """
        return tuple(result.decoded() if result.relation is None
                     and hasattr(result, "decoded") else result.relation
                     for result in self.results)


# --------------------------------------------------------------------------- #
# Prepared queries
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class _DatabaseBinding:
    """Everything one database needs at execution time, resolved once."""

    relations: Tuple[Relation, ...]
    catalog: Optional[StatisticsCatalog]
    plan: object  # ExecutionPlan | AnnotatedPlan | CyclicExecutionPlan


@dataclass(frozen=True)
class _ShardedBinding(_DatabaseBinding):
    """A database binding plus its resolved shard partition and plans.

    ``plan`` stays the full-database plan (so ``explain`` keeps working);
    ``shard_plans``/``shard_catalogs`` hold the per-slice annotations the
    shard driver actually executes.  The partition — including the
    generation ``token`` that keys the process workers' caches — is resolved
    once per database at binding time, so warm sharded executions do no
    partitioning work.
    """

    partition: object  # sharded.ShardPartition
    shard_plans: Tuple[object, ...]
    shard_catalogs: Tuple[Optional[StatisticsCatalog], ...]
    executor_name: str
    token: str


class PreparedQuery:
    """A query compiled once: dispatch, structure plan and per-database annotation.

    Obtained from :meth:`EngineSession.prepare`.  The acyclic-vs-cyclic
    dispatch and the structure plan are resolved at preparation time; the
    data-dependent half (statistics catalog, cost annotation, adaptive cover
    choice) is resolved once per database on first :meth:`execute` and then
    memoized (weakly, keyed by database identity), so warm executions do no
    planning work of any kind.
    """

    def __init__(self, session: "EngineSession", *, kind: str,
                 structure: object, hypergraph: Hypergraph,
                 output_attributes: Optional[Tuple[Attribute, ...]],
                 options: ExecutionOptions, name: str,
                 query: Optional["ConjunctiveQuery"] = None) -> None:
        self._session = session
        self._kind = kind
        self._structure = structure
        self._hypergraph = hypergraph
        self._output = output_attributes
        self._options = options
        self._name = name
        self._query = query
        # The digest is hashed once here — the monitor stamps it on every
        # query-log entry, so the execute path must not re-hash per run.
        self._digest = fingerprint_digest(structure.fingerprint)
        self._bindings: "weakref.WeakKeyDictionary[Database, _DatabaseBinding]" = \
            weakref.WeakKeyDictionary()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def kind(self) -> str:
        """``"acyclic"`` or ``"cyclic"`` — the dispatch resolved at prepare time."""
        return self._kind

    @property
    def fingerprint(self):
        """The schema fingerprint the structure plan was compiled for."""
        return self._structure.fingerprint

    @property
    def options(self) -> ExecutionOptions:
        """The options the query was prepared with (fully resolved)."""
        return self._options

    @property
    def output_attributes(self) -> Optional[Tuple[Attribute, ...]]:
        """The projection attributes, in order (``None`` = full join)."""
        return self._output

    @property
    def name(self) -> str:
        """The name given to answer relations."""
        return self._name

    @property
    def structure(self) -> object:
        """The data-independent structure plan (acyclic or cyclic)."""
        return self._structure

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def execute(self, database: Database):
        """Evaluate against one database; warm calls do zero planning work.

        Returns an :class:`~repro.engine.yannakakis.EngineResult` (acyclic
        dispatch) or :class:`~repro.engine.cyclic.executor.CyclicEngineResult`
        (cyclic dispatch).  The first execution against a database resolves
        its statistics catalog and cost annotation; subsequent executions
        against the *same* database reuse them outright — no cover search,
        no structure planning, no re-annotation.
        """
        try:
            binding = self._binding_for(database)
        except Exception as error:
            # Binding resolution (schema check, catalog measurement) fails
            # before any span opens, but the monitor's log must still see it:
            # a misrouted query is exactly what an operator greps the log for.
            self._session._record_error(self._kind)
            monitor = self._session._monitor
            if monitor is not None:
                monitor.observe_error(query=self._name,
                                      fingerprint=self._digest,
                                      kind=self._kind, elapsed_seconds=0.0,
                                      error=error, database=database)
            raise
        if self._options.trace and current_tracer() is NULL_TRACER:
            with use_tracer(self._session.tracer):
                return self._traced_run(binding, database=database)
        return self._traced_run(binding, database=database)

    def execute_many(self, databases: Iterable[Database], *,
                     labels: Optional[Sequence[str]] = None,
                     max_workers: Optional[int] = None,
                     pool: Optional[object] = None) -> ExecutionBatch:
        """Evaluate against many databases; aggregate the accounting.

        Hash indexes are shared across the batch (they are cached per
        relation instance), the statistics catalog is refreshed exactly once
        per distinct database, and the per-run statistics are folded into a
        :class:`BatchStatistics` that
        :func:`repro.analysis.reports.statistics_table` renders as a
        per-database breakdown plus a totals row.

        ``max_workers`` (or an explicit
        :class:`~repro.service.pool.ExecutionPool` via ``pool=``) runs the
        per-database executions on a thread pool — the runs are independent
        once prepared (the planner LRU, prepared caches and columnar caches
        are all safe under concurrent executes), results come back in batch
        order, and ambient context (tracer, deadline, span tags) propagates
        into the workers.  The default stays serial: for CPU-bound pure
        Python work the GIL serialises the runs anyway, so threads pay off
        when the caller overlaps execution with I/O or other native work
        (the query service's case), not in a tight in-process loop.
        """
        databases = tuple(databases)
        if pool is not None or (max_workers is not None and max_workers > 1
                                and len(databases) > 1):
            # Imported lazily: the service package sits above the engine
            # (its server imports this module), so the engine only touches
            # it when a caller asks for the parallel path.
            from ..service.pool import ExecutionPool

            if pool is None:
                with ExecutionPool(max_workers=max_workers) as transient:
                    results = tuple(transient.map_ordered(self.execute,
                                                          databases))
            else:
                results = tuple(pool.map_ordered(self.execute, databases))
        else:
            results = tuple(self.execute(database) for database in databases)
        statistics = BatchStatistics.from_runs(
            tuple(result.statistics for result in results), labels=labels,
            plan_name=f"session-batch:{self._name}")
        return ExecutionBatch(results=results, statistics=statistics)

    def execute_relations(self, relations: Sequence[Relation]):
        """Evaluate against an explicit relation sequence (no memoization).

        The relations' schemas must match the prepared fingerprint.  Used by
        callers that assemble relation sets outside a :class:`Database` (e.g.
        the maximal-object window); per-call catalogs are measured when the
        options are adaptive, but nothing is memoized — prefer
        :meth:`execute` for repeated traffic.
        """
        binding = self._bind_relations(tuple(relations))
        if self._options.trace and current_tracer() is NULL_TRACER:
            with use_tracer(self._session.tracer):
                return self._traced_run(binding)
        return self._traced_run(binding)

    def explain(self, database: Optional[Database] = None, *,
                analyze: bool = False) -> str:
        """A human-readable account of the prepared plan.

        Without a database: dispatch kind, options and the structure plan.
        With one: additionally the resolved per-database half — the cost
        annotation (acyclic) or the catalog-chosen cover (cyclic).

        ``analyze=True`` (EXPLAIN ANALYZE) *executes* the query against the
        database under a recording tracer and renders the annotated plan tree
        with estimated vs **actual** rows per vertex, join step and cluster —
        see :meth:`explain_analyze` for the structured form.
        """
        if analyze:
            if database is None:
                raise ValueError("explain(analyze=True) executes the query, "
                                 "so it needs a database")
            return self.explain_analyze(database).render()
        wanted = "*" if self._output is None else \
            ", ".join(str(attribute) for attribute in self._output)
        lines = [f"PreparedQuery {self._name!r}: {self._kind} dispatch, "
                 f"fingerprint {fingerprint_digest(self.fingerprint)}",
                 f"  outputs: {wanted}",
                 f"  options: {self._options}"]
        lines.append(self._structure.describe())
        if database is not None:
            binding = self._binding_for(database)
            if isinstance(binding.plan, AnnotatedPlan):
                lines.append(binding.plan.annotation.describe())
            elif binding.plan is not self._structure:
                lines.append("catalog-chosen cyclic plan:")
                lines.append(binding.plan.describe())
            if binding.catalog is not None:
                lines.append(binding.catalog.describe())
        return "\n".join(lines)

    def explain_analyze(self, database: Database) -> ExplainAnalysis:
        """Execute against ``database`` under a recording tracer; return the analysis.

        The returned :class:`~repro.telemetry.explain.ExplainAnalysis` pairs
        the annotation's *estimates* with the *actual* cardinalities sourced
        from the trace's span attributes (not copied from the statistics
        object — the trace is an independent witness), plus the measured
        per-phase wall-times.  ``.render()`` gives the textual report.
        """
        tracer = Tracer()
        with use_tracer(tracer):
            result = self.execute(database)
        binding = self._binding_for(database)
        vertex_estimates: Dict[str, float] = {}
        if isinstance(binding.plan, AnnotatedPlan):
            from ..core.nodes import format_node_set

            estimates = binding.plan.annotation.reduced_estimates
            for vertex, _parent in binding.plan.rooted.order:
                estimate = estimates.get(vertex)
                if estimate is not None:
                    vertex_estimates[format_node_set(vertex)] = estimate
        return build_explain_analysis(
            name=self._name, kind=self._kind, statistics=result.statistics,
            records=tuple(tracer.records), vertex_estimates=vertex_estimates,
            plan_description=self._structure.describe())

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _traced_run(self, binding: "_DatabaseBinding",
                    database: Optional[Database] = None):
        """Run one execution under an ``execute`` root span.

        Feeds the session's metrics and — when the session carries a
        :class:`~repro.telemetry.monitor.SessionMonitor` — its query log.
        When the monitor has *armed* slow-query tracing for this query (its
        previous run breached the threshold untraced) and no ambient tracer
        is installed, the run executes under a private recording tracer
        whose spans the monitor retains on the slow log entry.
        """
        monitor = self._session._monitor
        if monitor is not None \
                and monitor.config.slow_query_seconds is not None \
                and current_tracer() is NULL_TRACER \
                and monitor.wants_trace(self._name):
            capture = Tracer()
            with use_tracer(capture):
                return self._recorded_run(binding, database, capture)
        return self._recorded_run(binding, database, None)

    def _recorded_run(self, binding: "_DatabaseBinding",
                      database: Optional[Database],
                      capture: Optional[Tracer]):
        session = self._session
        monitor = session._monitor
        span = current_tracer().span("execute")
        started = perf_counter()
        try:
            with span:
                result = self._run(binding)
                if span.is_recording:
                    # Ambient request attribution (the query service installs
                    # client/request ids via use_span_tags) lands first so
                    # the engine's own attributes win any key clash.
                    for key, value in current_span_tags():
                        span.set(key, value)
                    span.set("query", self._name)
                    span.set("kind", self._kind)
                    span.set("mode", result.statistics.execution_mode)
                    span.set("output_rows", result.statistics.output_size)
        except Exception as error:
            session._record_error(self._kind)
            if monitor is not None:
                monitor.observe_error(
                    query=self._name, fingerprint=self._digest,
                    kind=self._kind,
                    elapsed_seconds=perf_counter() - started,
                    error=error, database=database)
            raise
        elapsed = perf_counter() - started
        session._record_execution(self._kind, result.statistics, elapsed)
        if monitor is not None:
            monitor.observe(
                query=self._name, fingerprint=self._digest, kind=self._kind,
                statistics=result.statistics, elapsed_seconds=elapsed,
                database=database,
                trace_records=tuple(capture.records)
                if capture is not None else None)
        return result

    def _binding_for(self, database: Database) -> _DatabaseBinding:
        """The memoized per-database execution state (resolved on first use).

        Resolution (catalog measurement + annotation) runs *outside* the
        session lock — it can scan data, and holding the lock would stall
        every other warm execution behind one cold database.  Two threads
        racing on the same cold database may both resolve; bindings are
        immutable and interchangeable, and the first insert wins.
        """
        with self._session._lock:
            binding = self._bindings.get(database)
        if binding is not None:
            return binding
        binding = self._resolve_binding(database)
        with self._session._lock:
            return self._bindings.setdefault(database, binding)

    def _resolve_binding(self, database: Database) -> _DatabaseBinding:
        if self._query is not None:
            relations = tuple(self._query.atom_relations(database))
            catalog = None
            if self._options.adaptive:
                catalog = StatisticsCatalog.from_relations(
                    relations, sample_limit=self._options.sample_limit)
        else:
            expected = schema_fingerprint(database.schema.to_hypergraph())
            if expected != self.fingerprint:
                raise SchemaError(
                    "the prepared query was compiled for a different schema "
                    "fingerprint than this database's")
            relations = database.relations()
            catalog = None
            if self._options.adaptive:
                catalog = self._session.catalog_for(
                    database, sample_limit=self._options.sample_limit)
        return self._build_binding(relations, catalog)

    def _bind_relations(self, relations: Tuple[Relation, ...]) -> _DatabaseBinding:
        expected = schema_fingerprint(
            Hypergraph([relation.schema.attribute_set for relation in relations]))
        if expected != self.fingerprint:
            raise SchemaError(
                "the prepared query was compiled for a different schema "
                "fingerprint than these relations'")
        catalog = None
        if self._options.adaptive:
            catalog = StatisticsCatalog.from_relations(
                relations, sample_limit=self._options.sample_limit)
        return self._build_binding(relations, catalog)

    def _build_binding(self, relations: Tuple[Relation, ...],
                       catalog: Optional[StatisticsCatalog]) -> _DatabaseBinding:
        """Compose the binding, resolving the shard partition when enabled."""
        from . import sharded

        plan = self._plan_with(catalog)
        shards = sharded.effective_shards(self._options.shards)
        if shards is None:
            return _DatabaseBinding(relations=relations, catalog=catalog,
                                    plan=plan)
        partition = sharded.partition_relations(relations, shards)
        shard_plans = []
        shard_catalogs = []
        for piece in partition.slices:
            if catalog is None:
                shard_plans.append(plan)
                shard_catalogs.append(None)
            else:
                # Per-shard catalogs keep per-shard plans cardinality-aware:
                # a skewed slice may prefer a different root or fold order.
                shard_catalog = StatisticsCatalog.from_relations(
                    piece.relations, sample_limit=self._options.sample_limit)
                shard_plans.append(self._plan_with(shard_catalog))
                shard_catalogs.append(shard_catalog)
        return _ShardedBinding(
            relations=relations, catalog=catalog, plan=plan,
            partition=partition, shard_plans=tuple(shard_plans),
            shard_catalogs=tuple(shard_catalogs),
            executor_name=sharded.effective_shard_executor(
                self._options.shard_executor),
            token=sharded.next_generation_token())

    def _plan_with(self, catalog: Optional[StatisticsCatalog]) -> object:
        """Compose the structure plan with a catalog (static plans pass through)."""
        if catalog is None:
            return self._structure
        planner = self._session.planner
        if self._kind == "acyclic":
            return planner.annotate(self._hypergraph, catalog,
                                    output_attributes=self._output,
                                    root=self._options.root)
        return planner.cyclic_plan_for(self._hypergraph, catalog=catalog)

    def _run(self, binding: _DatabaseBinding):
        options = self._options
        if options.deadline_seconds is not None:
            with deadline_scope(options.deadline_seconds):
                return self._run_engine(binding)
        return self._run_engine(binding)

    def _run_engine(self, binding: _DatabaseBinding):
        options = self._options
        if isinstance(binding, _ShardedBinding):
            from .sharded.driver import run_sharded
            return run_sharded(self, binding)
        if self._kind == "acyclic":
            return _yannakakis.evaluate(
                binding.relations, self._output, name=self._name,
                check_reduction=options.check_reduction, plan=binding.plan,
                execution_mode=options.execution_mode,
                column_backend=options.column_backend,
                decode=options.decode)
        # Resolved through the package attribute at call time so test doubles
        # patched onto ``repro.engine.cyclic`` intercept the dispatch.
        from . import cyclic
        return cyclic.evaluate_cyclic(
            binding.relations, self._output, name=self._name,
            check_reduction=options.check_reduction,
            cluster_row_bound=options.cluster_row_bound,
            plan=binding.plan, catalog=binding.catalog,
            planner=self._session.planner,
            execution_mode=options.execution_mode,
            column_backend=options.column_backend,
            decode=options.decode)


# --------------------------------------------------------------------------- #
# The session
# --------------------------------------------------------------------------- #
class EngineSession:
    """The engine's single intelligent entry point.

    A session owns a thread-safe :class:`QueryPlanner` (structure plans,
    cover search, LRU + disk persistence), the per-database statistics
    catalogs, and a prepared-query cache, so heavy repeated traffic compiles
    each query once and executes it many times::

        session = EngineSession()
        prepared = session.prepare(database, ("C0", "C3"))
        for db in incoming:                 # hot path: zero planning work
            answer = prepared.execute(db).relation

    ``EngineSession()`` builds a private planner; pass ``planner=`` to share
    one (the process-wide :func:`default_session` wraps
    :data:`~repro.engine.planner.DEFAULT_PLANNER`, so legacy entry points
    and session users share a single plan cache).
    """

    def __init__(self, planner: Optional[QueryPlanner] = None, *,
                 options: Optional[ExecutionOptions] = None,
                 planner_capacity: int = 128,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 monitor: Union[None, bool, MonitorConfig,
                                SessionMonitor] = None,
                 **overrides: object) -> None:
        self._planner = planner if planner is not None \
            else QueryPlanner(planner_capacity)
        self._options = ExecutionOptions.resolve(
            ExecutionOptions(), options, dict(overrides))
        # Every session owns a tracer (used when ``options.trace`` is on and
        # no ambient tracer is installed) and a metrics registry parented to
        # the process-wide one, so per-session counters roll up automatically.
        self._tracer = tracer if tracer is not None else Tracer()
        self._metrics = metrics if metrics is not None \
            else MetricsRegistry(parent=global_registry())
        # Opt-in operational monitoring: ``True`` (defaults), a
        # MonitorConfig, or a ready SessionMonitor.  Bound after the planner
        # and registry exist — bind() captures both.
        self._monitor: Optional[SessionMonitor] = self._resolve_monitor(monitor)
        # Resolved metric series handles, keyed by (kind, mode) / phase name:
        # the per-execution path must not pay the name+label family lookup.
        self._execution_series_cache: Dict[Tuple[str, str], Dict[str, object]] = {}
        self._phase_series_cache: Dict[str, object] = {}
        self._lock = threading.RLock()
        # Schema-keyed prepared queries: (fingerprint, outputs, options, name).
        self._prepared: "OrderedDict[Tuple[object, ...], PreparedQuery]" = OrderedDict()
        # Query-object-keyed prepared queries.  A WeakKeyDictionary would
        # never collect here — each PreparedQuery strongly references its
        # query, which would pin its own weak key — so this is a plain LRU
        # keyed by id(query), with the stored weakref validating that the id
        # was not recycled by a different object.
        self._prepared_queries: "OrderedDict[int, Tuple[weakref.ref, Dict[Tuple[object, ...], PreparedQuery]]]" = \
            OrderedDict()

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def planner(self) -> QueryPlanner:
        """The session's planner (shared structure-plan cache)."""
        return self._planner

    @property
    def options(self) -> ExecutionOptions:
        """The session's default execution options."""
        return self._options

    @property
    def tracer(self) -> Tracer:
        """The session's tracer (records when ``options.trace`` routes through it)."""
        return self._tracer

    @property
    def metrics(self) -> MetricsRegistry:
        """The session's metrics registry (parented to the process-wide one)."""
        return self._metrics

    @property
    def monitor(self) -> Optional[SessionMonitor]:
        """The session's operational monitor (``None`` unless opted in)."""
        return self._monitor

    @monitor.setter
    def monitor(self, monitor: "Union[None, bool, MonitorConfig, SessionMonitor]") -> None:
        """Attach (``True`` / config / monitor) or detach (``None``/``False``)
        operational monitoring on a live session.  Detaching keeps the
        monitor object intact — re-attach it later and the query log and
        quality records continue where they left off."""
        self._monitor = self._resolve_monitor(monitor)

    def _resolve_monitor(self, monitor: "Union[None, bool, MonitorConfig, SessionMonitor]"
                         ) -> Optional[SessionMonitor]:
        # Duck-typed on purpose: ``python -m repro.telemetry.monitor``
        # re-executes that module under a second name, so its MonitorConfig
        # is a *different class object* than the one imported here and an
        # isinstance() gate would spuriously reject it.
        if monitor is None or monitor is False:
            return None
        if monitor is True:
            return SessionMonitor().bind(self)
        if hasattr(monitor, "bind"):            # a ready SessionMonitor
            return monitor.bind(self)
        if hasattr(monitor, "log_capacity"):    # a MonitorConfig
            return SessionMonitor(monitor).bind(self)
        raise TypeError("monitor= expects True, a MonitorConfig or a "
                        f"SessionMonitor, not {type(monitor).__name__}")

    # ------------------------------------------------------------------ #
    # Catalog lifecycle
    # ------------------------------------------------------------------ #
    def catalog_for(self, database: Database, *,
                    sample_limit: Optional[int] = _UNSET_SAMPLE_LIMIT,
                    refresh: bool = False) -> StatisticsCatalog:
        """The statistics catalog for one database, measured once per instance.

        Databases are immutable, so a catalog never goes stale; the
        measurement is cached on the database instance itself (see
        :meth:`Database.statistics_catalog
        <repro.relational.database.Database.statistics_catalog>`), keyed by
        ``sample_limit`` — which defaults to the session's option.
        ``refresh=True`` forces a re-measure.  Measurement scans data and
        runs entirely outside the session lock.
        """
        if sample_limit is _UNSET_SAMPLE_LIMIT:
            sample_limit = self._options.sample_limit
        return database.statistics_catalog(sample_limit=sample_limit,
                                           refresh=refresh)

    # ------------------------------------------------------------------ #
    # Preparation
    # ------------------------------------------------------------------ #
    def prepare(self, source: PreparedSource,
                output_attributes: Optional[Iterable[Attribute]] = None, *,
                options: Optional[ExecutionOptions] = None,
                name: Optional[str] = None,
                **overrides: object) -> PreparedQuery:
        """Compile ``source`` into a :class:`PreparedQuery` (cached per schema).

        ``source`` may be a :class:`~repro.queries.conjunctive.ConjunctiveQuery`
        (its atoms are re-derived per database at execution time), a
        :class:`Database` / :class:`DatabaseSchema` / :class:`Hypergraph`
        (prepared at the schema level; ``execute`` joins the database's
        relations), or a sequence of :class:`Relation` objects (prepared from
        their schemas).  Dispatch — acyclic engine vs cyclic subsystem — is
        resolved here, once: the session tries the acyclic planner first and
        falls back to the cluster cover on
        :class:`~repro.exceptions.CyclicHypergraphError` (``force_cyclic``
        skips straight to the cover).  Preparation results are cached, so
        repeated ``prepare`` calls with the same schema, outputs and options
        return the same object.
        """
        resolved = ExecutionOptions.resolve(self._options, options, dict(overrides))
        from ..queries.conjunctive import ConjunctiveQuery

        if isinstance(source, ConjunctiveQuery) and output_attributes is None:
            # Warm fast path: a repeated prepare of the same query object
            # needs no hypergraph construction at all — the cache key is
            # derivable from the query's head alone.
            head = tuple(variable.name for variable in source.head)
            cache_key = (head, resolved, name if name is not None else source.name)
            with self._lock:
                entry = self._prepared_queries.get(id(source))
                if entry is not None and entry[0]() is source \
                        and cache_key in entry[1]:
                    self._prepared_queries.move_to_end(id(source))
                    return entry[1][cache_key]
        query, hypergraph, default_name = self._normalise_source(source)
        wanted = self._normalise_outputs(output_attributes, query, hypergraph)
        final_name = name if name is not None else default_name

        cache_key = (wanted, resolved, final_name)
        with self._lock:
            if query is not None:
                entry = self._prepared_queries.get(id(query))
                if entry is not None and entry[0]() is query \
                        and cache_key in entry[1]:
                    self._prepared_queries.move_to_end(id(query))
                    return entry[1][cache_key]
            else:
                schema_key = (schema_fingerprint(hypergraph),) + cache_key
                cached = self._prepared.get(schema_key)
                if cached is not None:
                    self._prepared.move_to_end(schema_key)
                    return cached

        if resolved.trace and current_tracer() is NULL_TRACER:
            with use_tracer(self._tracer):
                kind, structure = self._dispatch_traced(hypergraph, query,
                                                        resolved)
        else:
            kind, structure = self._dispatch_traced(hypergraph, query, resolved)
        prepared = PreparedQuery(self, kind=kind, structure=structure,
                                 hypergraph=hypergraph,
                                 output_attributes=wanted, options=resolved,
                                 name=final_name, query=query)
        with self._lock:
            if query is not None:
                entry = self._prepared_queries.get(id(query))
                if entry is None or entry[0]() is not query:
                    entry = (weakref.ref(query), {})
                    self._prepared_queries[id(query)] = entry
                entry[1][cache_key] = prepared
                self._prepared_queries.move_to_end(id(query))
                # Purge entries whose query died (their ids may be recycled),
                # then cap what is left.
                dead = [key for key, (ref, _) in self._prepared_queries.items()
                        if ref() is None]
                for key in dead:
                    del self._prepared_queries[key]
                while len(self._prepared_queries) > _PREPARED_CACHE_CAPACITY:
                    self._prepared_queries.popitem(last=False)
            else:
                self._prepared[schema_key] = prepared
                if len(self._prepared) > _PREPARED_CACHE_CAPACITY:
                    self._prepared.popitem(last=False)
        return prepared

    def _normalise_source(self, source: PreparedSource):
        """Split a prepare source into (query?, hypergraph, default name)."""
        from ..queries.conjunctive import ConjunctiveQuery

        if isinstance(source, ConjunctiveQuery):
            return source, source.hypergraph(), source.name
        if isinstance(source, Database):
            return None, source.schema.to_hypergraph(), "U"
        if isinstance(source, DatabaseSchema):
            return None, source.to_hypergraph(), "U"
        if isinstance(source, Hypergraph):
            return None, source, "U"
        try:
            relations = tuple(source)
        except TypeError:
            relations = ()
        if not relations or not all(isinstance(r, Relation) for r in relations):
            raise SchemaError(
                "prepare expects a ConjunctiveQuery, Database, DatabaseSchema, "
                "Hypergraph or a non-empty sequence of Relations")
        hypergraph = Hypergraph([relation.schema.attribute_set
                                 for relation in relations])
        return None, hypergraph, "yannakakis"

    @staticmethod
    def _normalise_outputs(output_attributes, query, hypergraph
                           ) -> Optional[Tuple[Attribute, ...]]:
        if output_attributes is None:
            if query is not None:
                return tuple(variable.name for variable in query.head)
            return None
        wanted = tuple(dict.fromkeys(output_attributes))
        missing = frozenset(wanted) - hypergraph.nodes
        if missing:
            raise SchemaError(
                f"output attributes {sorted(missing, key=str)} are not in the schema")
        return wanted

    def _dispatch_traced(self, hypergraph: Hypergraph,
                         query: Optional["ConjunctiveQuery"],
                         options: ExecutionOptions) -> Tuple[str, object]:
        """Dispatch under a ``prepare`` span (cover search traces beneath it)."""
        span = current_tracer().span("prepare")
        with span:
            kind, structure = self._dispatch(hypergraph, query, options)
            if span.is_recording:
                span.set("kind", kind)
                span.set("fingerprint",
                         fingerprint_digest(structure.fingerprint))
            return kind, structure

    def _dispatch(self, hypergraph: Hypergraph,
                  query: Optional["ConjunctiveQuery"],
                  options: ExecutionOptions) -> Tuple[str, object]:
        """Resolve acyclic-vs-cyclic dispatch and compile the structure plan."""
        if not options.force_cyclic and (query is None or query.is_acyclic()):
            try:
                return "acyclic", self._planner.plan_for(hypergraph,
                                                         root=options.root)
            except CyclicHypergraphError:
                # GYO and the join-tree construction can disagree on
                # degenerate hypergraphs (e.g. empty edges from all-constant
                # atoms); the cyclic subsystem folds those into a cluster.
                pass
        return "cyclic", self._planner.cyclic_plan_for(hypergraph)

    # ------------------------------------------------------------------ #
    # One-shot execution conveniences
    # ------------------------------------------------------------------ #
    def execute(self, source: PreparedSource, database: Database,
                output_attributes: Optional[Iterable[Attribute]] = None,
                **prepare_kwargs: object):
        """``prepare(source, …).execute(database)`` in one call.

        Preparation is cached, so repeated ``execute`` calls with the same
        source/outputs/options hit the warm path exactly like a held
        :class:`PreparedQuery`.
        """
        return self.prepare(source, output_attributes,
                            **prepare_kwargs).execute(database)

    def execute_many(self, source: PreparedSource,
                     databases: Iterable[Database],
                     output_attributes: Optional[Iterable[Attribute]] = None, *,
                     labels: Optional[Sequence[str]] = None,
                     max_workers: Optional[int] = None,
                     pool: Optional[object] = None,
                     **prepare_kwargs: object) -> ExecutionBatch:
        """``prepare(source, …).execute_many(databases, …)`` in one call.

        ``max_workers`` (or a shared ``pool=``) overlaps the per-database
        runs on a thread pool — see :meth:`PreparedQuery.execute_many` for
        the concurrency contract.
        """
        prepared = self.prepare(source, output_attributes, **prepare_kwargs)
        return prepared.execute_many(databases, labels=labels,
                                     max_workers=max_workers, pool=pool)

    def execute_join(self, relations: Sequence[Relation],
                     output_attributes: Optional[Iterable[Attribute]] = None, *,
                     name: Optional[str] = None, **prepare_kwargs: object):
        """Join an explicit relation sequence (dispatch resolved by the session).

        The schema-level preparation is cached by fingerprint, so repeated
        joins over the same shapes reuse the compiled dispatch; the relation
        *contents* are taken from the arguments on every call.
        """
        relations = tuple(relations)
        prepared = self.prepare(relations, output_attributes, name=name,
                                **prepare_kwargs)
        return prepared.execute_relations(relations)

    def explain(self, source: PreparedSource,
                database: Optional[Database] = None,
                output_attributes: Optional[Iterable[Attribute]] = None,
                **prepare_kwargs: object) -> str:
        """The prepared plan's explanation (see :meth:`PreparedQuery.explain`)."""
        return self.prepare(source, output_attributes,
                            **prepare_kwargs).explain(database)

    # ------------------------------------------------------------------ #
    # Telemetry
    # ------------------------------------------------------------------ #
    def _record_execution(self, kind: str, statistics: object,
                          elapsed_seconds: float) -> None:
        """Fold one execution's accounting into the session's metrics.

        Also stamps ``statistics.planner_hit_ratio`` — the serving planner is
        session state, so the per-run statistics object cannot compute the
        ratio itself.
        """
        info = self._planner.cache_info()
        lookups = info.hits + info.misses
        ratio = (info.hits / lookups) if lookups else None
        if ratio is not None and hasattr(statistics, "planner_hit_ratio"):
            statistics.planner_hit_ratio = ratio
        mode = str(getattr(statistics, "execution_mode", "-"))
        series = self._execution_series(kind, mode)
        series["queries"].inc()
        series["semijoins"].inc(getattr(statistics, "semijoin_steps", 0) or 0)
        series["removed"].inc(
            getattr(statistics, "rows_removed_by_reduction", 0) or 0)
        series["output"].inc(getattr(statistics, "output_size", 0) or 0)
        hit = bool(getattr(statistics, "plan_cache_hit", False))
        series["cache_hit" if hit else "cache_miss"].inc()
        series["latency"].observe(elapsed_seconds)
        for phase, seconds in getattr(statistics, "phase_times", ()) or ():
            histogram = self._phase_series_cache.get(phase)
            if histogram is None:
                histogram = self._phase_series_cache[phase] = \
                    self._metrics.histogram("engine_phase_seconds",
                                            "Per-phase latency.",
                                            labels={"phase": phase})
            histogram.observe(seconds)
        if ratio is not None:
            series["hit_ratio"].set(ratio)
        series["cache_size"].set(info.size)
        series["blocks"].set(column_cache_info()["relations"])

    def _execution_series(self, kind: str, mode: str) -> Dict[str, object]:
        """The resolved metric series the per-execution path records into.

        Resolving a series walks the family registry (name lookup, label-key
        canonicalisation, parent chaining) under a lock — fine once, too slow
        per query.  The handles are stable once created, so cache them.
        """
        key = (kind, mode)
        series = self._execution_series_cache.get(key)
        if series is None:
            metrics = self._metrics
            series = self._execution_series_cache[key] = {
                "queries": metrics.counter(
                    "engine_queries_total",
                    "Queries executed through the session.",
                    labels={"kind": kind, "mode": mode}),
                "semijoins": metrics.counter(
                    "engine_semijoin_steps_total",
                    "Semijoin steps run by the full reducer."),
                "removed": metrics.counter(
                    "engine_rows_removed_total",
                    "Dangling rows removed by reduction."),
                "output": metrics.counter(
                    "engine_rows_output_total",
                    "Answer rows returned to callers."),
                "cache_hit": metrics.counter(
                    "engine_plan_cache_requests_total",
                    "Plan-cache lookups by outcome.",
                    labels={"outcome": "hit"}),
                "cache_miss": metrics.counter(
                    "engine_plan_cache_requests_total",
                    "Plan-cache lookups by outcome.",
                    labels={"outcome": "miss"}),
                "latency": metrics.histogram(
                    "engine_query_seconds", "End-to-end query latency."),
                "hit_ratio": metrics.gauge(
                    "engine_planner_cache_hit_ratio",
                    "The session planner's LRU hit ratio."),
                "cache_size": metrics.gauge(
                    "engine_planner_cache_size",
                    "Compiled plans resident in the planner LRU."),
                "blocks": metrics.gauge(
                    "engine_blocks_cached",
                    "Relations holding a cached column block."),
            }
        return series

    def _record_error(self, kind: str) -> None:
        """Count one failed execution."""
        self._metrics.counter("engine_query_errors_total",
                              "Queries that raised during execution.",
                              labels={"kind": kind}).inc()

    # ------------------------------------------------------------------ #
    # Cache lifecycle
    # ------------------------------------------------------------------ #
    def save(self, path) -> int:
        """Persist the planner's plan cache to ``path`` (atomic JSON file)."""
        return self._planner.save_cache(path)

    def load(self, path, *, missing_ok: bool = False) -> int:
        """Warm the planner from a :meth:`save` file; return plans compiled."""
        return self._planner.load_cache(path, missing_ok=missing_ok)

    def cache_info(self) -> PlanCacheInfo:
        """The planner's hit/miss/size counters."""
        return self._planner.cache_info()

    def clear(self) -> None:
        """Drop cached plans and prepared queries."""
        with self._lock:
            self._planner.clear()
            self._prepared.clear()
            self._prepared_queries.clear()

    def describe(self) -> str:
        """A one-line session summary (plan cache, prepared queries)."""
        info = self.cache_info()
        with self._lock:
            prepared = len(self._prepared) + sum(
                len(entry[1]) for entry in self._prepared_queries.values())
        return (f"EngineSession(plans={info.size}/{info.capacity} "
                f"hits={info.hits} misses={info.misses} "
                f"prepared={prepared})")


# --------------------------------------------------------------------------- #
# The default session
# --------------------------------------------------------------------------- #
_DEFAULT_SESSION: Optional[EngineSession] = None
_DEFAULT_SESSION_LOCK = threading.Lock()


def default_session() -> EngineSession:
    """The process-wide session used by the legacy shims and the query layer.

    Wraps :data:`~repro.engine.planner.DEFAULT_PLANNER`, so legacy entry
    points and session users share one structure-plan cache.  This is the
    only module that manages the default planner's lifecycle.
    """
    global _DEFAULT_SESSION
    with _DEFAULT_SESSION_LOCK:
        if _DEFAULT_SESSION is None:
            _DEFAULT_SESSION = EngineSession(planner=DEFAULT_PLANNER)
        return _DEFAULT_SESSION


# --------------------------------------------------------------------------- #
# Deprecated legacy entry points
# --------------------------------------------------------------------------- #
def _warn_legacy(name: str, replacement: str) -> None:
    warnings.warn(
        f"repro.engine.{name} is deprecated; use {replacement} "
        "(see the 'Sessions & prepared queries' section of the README)",
        DeprecationWarning, stacklevel=3)


def _session_planner(planner: Optional[QueryPlanner]) -> QueryPlanner:
    """The planner a legacy call should run against (default session's when unset)."""
    return planner if planner is not None else default_session().planner


def legacy_evaluate(relations, output_attributes=None, *,
                    planner=None, root=None, name="yannakakis",
                    check_reduction=False, plan=None, catalog=None):
    """Deprecated: ``EngineSession.prepare(relations).execute_relations(...)``."""
    _warn_legacy("evaluate", "EngineSession.execute_join(...) or "
                 "EngineSession.prepare(...).execute(...)")
    return _yannakakis.evaluate(relations, output_attributes,
                                planner=_session_planner(planner), root=root,
                                name=name, check_reduction=check_reduction,
                                plan=plan, catalog=catalog)


def legacy_evaluate_database(database, output_attributes=None, *,
                             planner=None, root=None, name="U",
                             check_reduction=False, adaptive=False,
                             catalog=None):
    """Deprecated: ``EngineSession.prepare(database).execute(database)``."""
    _warn_legacy("evaluate_database",
                 "EngineSession.prepare(database, ...).execute(database)")
    return _yannakakis.evaluate_database(database, output_attributes,
                                         planner=_session_planner(planner),
                                         root=root, name=name,
                                         check_reduction=check_reduction,
                                         adaptive=adaptive, catalog=catalog)


def legacy_evaluate_cyclic(relations, output_attributes=None, *,
                           planner=None, name="cyclic", check_reduction=False,
                           cluster_row_bound=None, catalog=None, plan=None):
    """Deprecated: the session resolves cyclic dispatch itself."""
    _warn_legacy("evaluate_cyclic", "EngineSession.execute_join(...) or "
                 "EngineSession.prepare(...).execute(...)")
    from .cyclic import executor
    return executor.evaluate_cyclic(relations, output_attributes,
                                    planner=_session_planner(planner),
                                    name=name, check_reduction=check_reduction,
                                    cluster_row_bound=cluster_row_bound,
                                    catalog=catalog, plan=plan)


def legacy_evaluate_cyclic_database(database, output_attributes=None, *,
                                    planner=None, name="U",
                                    check_reduction=False,
                                    cluster_row_bound=None, adaptive=False,
                                    catalog=None):
    """Deprecated: ``EngineSession.prepare(database).execute(database)``."""
    _warn_legacy("evaluate_cyclic_database",
                 "EngineSession.prepare(database, ...).execute(database)")
    from .cyclic import executor
    return executor.evaluate_cyclic_database(
        database, output_attributes, planner=_session_planner(planner),
        name=name, check_reduction=check_reduction,
        cluster_row_bound=cluster_row_bound, adaptive=adaptive,
        catalog=catalog)
