"""``repro.engine`` — the Yannakakis semijoin execution engine.

This package turns the paper's acyclicity machinery into an actual query
processor.  Maier & Ullman's Section 7 claim is that for **acyclic** schemas
the objects relevant to a query are exactly the canonical connection, and
joining them need never build oversized intermediates; the classical way to
make that operational is the Bernstein–Goodman full reducer plus Yannakakis'
algorithm, both of which exist *iff* the schema's hypergraph has a join tree.

Layers (bottom-up):

* :mod:`~repro.engine.indexes` — hash indexes over relation columns with a
  weak per-relation cache (:func:`index_for`), shared by every operator;
* :mod:`~repro.engine.columnar` — the columnar physical layer (the
  default): :class:`ColumnBlock` value arrays with zero-copy selection
  vectors, grouped key encoding, and whole-block semijoin/antijoin/join
  kernels; relations are decoded only at the result boundary, and
  ``execution_mode="row"`` keeps the row operators below as the reference
  implementation;
* :mod:`~repro.engine.semijoin` — indexed semijoin / anti-semijoin / natural
  join with fused projection, the engine's row-at-a-time physical operators;
* :mod:`~repro.engine.reducer` — full-reducer semijoin programs compiled off
  a rooted join tree (leaf-to-root then root-to-leaf pass), with a
  proof-of-reduction check hook;
* :mod:`~repro.engine.catalog` — per-database :class:`StatisticsCatalog`
  objects (cardinalities, distinct counts, System-R estimators) and the
  :class:`CostAnnotation` compiler that simulates plans on estimates — the
  data-dependent half of two-phase planning;
* :mod:`~repro.engine.planner` — data-independent :class:`ExecutionPlan`
  objects in an LRU cache keyed by a canonical schema fingerprint (with
  disk persistence via ``save_cache``/``load_cache``), composed with
  annotations into :class:`AnnotatedPlan` by ``plan_for(db)``, plus
  :class:`EngineStatistics` (a :class:`~repro.relational.join_plans.JoinStatistics`
  extension) for cost accounting with estimated-vs-actual columns;
* :mod:`~repro.engine.yannakakis` — the end-to-end evaluator: plan → reduce →
  bottom-up join with early projection;
* :mod:`~repro.engine.cyclic` — the cyclic-query subsystem: cover the cyclic
  core with clusters (maximal-object-style grouping), reduce the acyclic
  quotient with the same machinery, nested-loop only inside the clusters.

* :mod:`~repro.engine.session` — the unified facade: an
  :class:`EngineSession` owning the planner, the per-database statistics
  catalogs and cache persistence, and :class:`PreparedQuery` objects that
  resolve dispatch + planning once and then execute many times (singly or
  batched via ``execute_many``).

Entry point: :class:`EngineSession` (or the process-wide
:func:`default_session`) — ``session.prepare(source)`` resolves
acyclic-vs-cyclic dispatch, structure planning and per-database cost
annotation exactly once; ``prepared.execute(database)`` is the hot path.
``ConjunctiveQuery.evaluate(database)`` in the query layer routes through
the default session.  The PR-1/PR-2 module-level functions
:func:`evaluate`, :func:`evaluate_database`, :func:`evaluate_cyclic` and
:func:`evaluate_cyclic_database` remain as deprecated shims that emit
``DeprecationWarning`` and delegate to the default session's planner.
"""

from .catalog import (
    CostAnnotation,
    JoinEstimate,
    RelationStatistics,
    StatisticsCatalog,
    annotate_tree,
)
from .columnar import (
    ColumnBlock,
    antijoin_blocks,
    available_column_backends,
    block_for,
    clear_column_caches,
    column_cache_info,
    default_column_backend,
    default_execution_mode,
    intersect_blocks,
    natural_join_blocks,
    semijoin_blocks,
    set_default_column_backend,
    set_default_execution_mode,
    use_column_backend,
)
from .indexes import HashIndex, clear_index_cache, index_cache_info, index_for
from .planner import (
    DEFAULT_PLANNER,
    AnnotatedPlan,
    EngineStatistics,
    ExecutionPlan,
    PlanCacheInfo,
    QueryPlanner,
    SchemaFingerprint,
    annotate_plan,
    fingerprint_digest,
    schema_fingerprint,
)
from .reducer import (
    FullReducer,
    ReductionError,
    ReductionStep,
    ReductionTrace,
    verify_full_reduction,
)
from .semijoin import (
    antijoin_indexed,
    natural_join_indexed,
    semijoin_indexed,
    shared_attributes,
)
from .yannakakis import EngineResult
from .cyclic import (
    AcyclicQuotient,
    ClusterCover,
    CyclicEngineResult,
    CyclicEngineStatistics,
    CyclicExecutionPlan,
    EdgeCluster,
    choose_cover,
    enumerate_covers,
)
from .session import (
    BatchStatistics,
    EngineSession,
    ExecutionBatch,
    ExecutionOptions,
    PreparedQuery,
    default_session,
    legacy_evaluate as evaluate,
    legacy_evaluate_database as evaluate_database,
    legacy_evaluate_cyclic as evaluate_cyclic,
    legacy_evaluate_cyclic_database as evaluate_cyclic_database,
)

__all__ = [
    # indexes
    "HashIndex", "index_for", "index_cache_info", "clear_index_cache",
    # columnar physical layer
    "ColumnBlock", "block_for", "column_cache_info", "clear_column_caches",
    "semijoin_blocks", "antijoin_blocks", "natural_join_blocks", "intersect_blocks",
    "default_execution_mode", "set_default_execution_mode",
    "available_column_backends", "default_column_backend",
    "set_default_column_backend", "use_column_backend",
    # physical operators (row reference implementation)
    "semijoin_indexed", "antijoin_indexed", "natural_join_indexed", "shared_attributes",
    # reducer
    "FullReducer", "ReductionStep", "ReductionTrace", "ReductionError",
    "verify_full_reduction",
    # statistics catalog / cost annotation
    "RelationStatistics", "StatisticsCatalog", "JoinEstimate", "CostAnnotation",
    "annotate_tree",
    # planning
    "ExecutionPlan", "AnnotatedPlan", "annotate_plan",
    "EngineStatistics", "QueryPlanner", "PlanCacheInfo",
    "SchemaFingerprint", "schema_fingerprint", "fingerprint_digest", "DEFAULT_PLANNER",
    # sessions (the unified facade)
    "EngineSession", "PreparedQuery", "ExecutionOptions",
    "ExecutionBatch", "BatchStatistics", "default_session",
    # evaluation (deprecated shims; prefer EngineSession)
    "EngineResult", "evaluate", "evaluate_database",
    # cyclic subsystem
    "EdgeCluster", "ClusterCover", "choose_cover", "enumerate_covers",
    "AcyclicQuotient", "CyclicExecutionPlan", "CyclicEngineStatistics",
    "CyclicEngineResult", "evaluate_cyclic", "evaluate_cyclic_database",
]
