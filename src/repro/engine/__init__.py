"""``repro.engine`` — the Yannakakis semijoin execution engine.

This package turns the paper's acyclicity machinery into an actual query
processor.  Maier & Ullman's Section 7 claim is that for **acyclic** schemas
the objects relevant to a query are exactly the canonical connection, and
joining them need never build oversized intermediates; the classical way to
make that operational is the Bernstein–Goodman full reducer plus Yannakakis'
algorithm, both of which exist *iff* the schema's hypergraph has a join tree.

Layers (bottom-up):

* :mod:`~repro.engine.indexes` — hash indexes over relation columns with a
  weak per-relation cache (:func:`index_for`), shared by every operator;
* :mod:`~repro.engine.semijoin` — indexed semijoin / anti-semijoin / natural
  join with fused projection, the engine's physical operators;
* :mod:`~repro.engine.reducer` — full-reducer semijoin programs compiled off
  a rooted join tree (leaf-to-root then root-to-leaf pass), with a
  proof-of-reduction check hook;
* :mod:`~repro.engine.catalog` — per-database :class:`StatisticsCatalog`
  objects (cardinalities, distinct counts, System-R estimators) and the
  :class:`CostAnnotation` compiler that simulates plans on estimates — the
  data-dependent half of two-phase planning;
* :mod:`~repro.engine.planner` — data-independent :class:`ExecutionPlan`
  objects in an LRU cache keyed by a canonical schema fingerprint (with
  disk persistence via ``save_cache``/``load_cache``), composed with
  annotations into :class:`AnnotatedPlan` by ``plan_for(db)``, plus
  :class:`EngineStatistics` (a :class:`~repro.relational.join_plans.JoinStatistics`
  extension) for cost accounting with estimated-vs-actual columns;
* :mod:`~repro.engine.yannakakis` — the end-to-end evaluator: plan → reduce →
  bottom-up join with early projection;
* :mod:`~repro.engine.cyclic` — the cyclic-query subsystem: cover the cyclic
  core with clusters (maximal-object-style grouping), reduce the acyclic
  quotient with the same machinery, nested-loop only inside the clusters.

Entry points: :func:`evaluate` (a set of relations, e.g. a conjunctive
query's atom relations), :func:`evaluate_database` (a whole database), their
cyclic counterparts :func:`evaluate_cyclic` / :func:`evaluate_cyclic_database`,
and ``ConjunctiveQuery.evaluate(database)`` in the query layer, which
dispatches acyclic queries to the acyclic engine and cyclic queries to the
cyclic subsystem (the naive plan is an explicit opt-in only).
"""

from .catalog import (
    CostAnnotation,
    JoinEstimate,
    RelationStatistics,
    StatisticsCatalog,
    annotate_tree,
)
from .indexes import HashIndex, clear_index_cache, index_cache_info, index_for
from .planner import (
    DEFAULT_PLANNER,
    AnnotatedPlan,
    EngineStatistics,
    ExecutionPlan,
    PlanCacheInfo,
    QueryPlanner,
    SchemaFingerprint,
    annotate_plan,
    fingerprint_digest,
    schema_fingerprint,
)
from .reducer import (
    FullReducer,
    ReductionError,
    ReductionStep,
    ReductionTrace,
    verify_full_reduction,
)
from .semijoin import (
    antijoin_indexed,
    natural_join_indexed,
    semijoin_indexed,
    shared_attributes,
)
from .yannakakis import EngineResult, evaluate, evaluate_database
from .cyclic import (
    AcyclicQuotient,
    ClusterCover,
    CyclicEngineResult,
    CyclicEngineStatistics,
    CyclicExecutionPlan,
    EdgeCluster,
    choose_cover,
    enumerate_covers,
    evaluate_cyclic,
    evaluate_cyclic_database,
)

__all__ = [
    # indexes
    "HashIndex", "index_for", "index_cache_info", "clear_index_cache",
    # physical operators
    "semijoin_indexed", "antijoin_indexed", "natural_join_indexed", "shared_attributes",
    # reducer
    "FullReducer", "ReductionStep", "ReductionTrace", "ReductionError",
    "verify_full_reduction",
    # statistics catalog / cost annotation
    "RelationStatistics", "StatisticsCatalog", "JoinEstimate", "CostAnnotation",
    "annotate_tree",
    # planning
    "ExecutionPlan", "AnnotatedPlan", "annotate_plan",
    "EngineStatistics", "QueryPlanner", "PlanCacheInfo",
    "SchemaFingerprint", "schema_fingerprint", "fingerprint_digest", "DEFAULT_PLANNER",
    # evaluation
    "EngineResult", "evaluate", "evaluate_database",
    # cyclic subsystem
    "EdgeCluster", "ClusterCover", "choose_cover", "enumerate_covers",
    "AcyclicQuotient", "CyclicExecutionPlan", "CyclicEngineStatistics",
    "CyclicEngineResult", "evaluate_cyclic", "evaluate_cyclic_database",
]
