"""Full-reducer semijoin programs over join trees (Bernstein–Goodman).

Given a join tree for an acyclic hypergraph, the *full reducer* is the
two-pass semijoin program the paper's Section 7 machinery licenses:

* an **upward pass** (leaves to root) semijoining every parent with each of
  its children, then
* a **downward pass** (root to leaves) semijoining every child with its
  parent.

Afterwards no relation holds a dangling tuple: each equals the projection of
the universal join onto its scheme.  The engine's reducer differs from the
logical construction in :mod:`repro.relational.semijoin_reducer` in that it
operates on one relation *per join-tree vertex* (edges, not relation names),
probes cached hash indexes on the separators, and records per-step accounting.

``check_hook`` is the proof-of-reduction hook: after the two passes the hook
is called with the reduced vertex map and the rooted tree, and must return
``True``; the default hook re-verifies semijoin-stability of every tree edge
in both directions, which is exactly the fixpoint condition full reduction
guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Tuple

from ..core.hypergraph import Edge
from ..core.join_tree import JoinTree, RootedJoinTree
from ..core.nodes import format_node_set, sorted_nodes
from ..exceptions import ReproError
from ..relational.relation import Relation
from ..telemetry.tracing import current_tracer
from .semijoin import semijoin_indexed, shared_attributes

__all__ = [
    "ReductionStep",
    "ReductionTrace",
    "ReductionError",
    "FullReducer",
    "verify_full_reduction",
    "verify_full_reduction_blocks",
]

VertexMap = Dict[Edge, Relation]
CheckHook = Callable[[Mapping[Edge, Relation], RootedJoinTree], bool]


class ReductionError(ReproError):
    """Raised when the proof-of-reduction check hook rejects a reducer run."""


@dataclass(frozen=True)
class ReductionStep:
    """One step ``target := target ⋉ source`` between join-tree vertices."""

    target: Edge
    source: Edge
    separator: FrozenSet
    direction: str  # "up" (child into parent) or "down" (parent into child)

    def describe(self) -> str:
        """Render the step in ``R := R ⋉ S  [separator]`` notation."""
        return (f"{format_node_set(self.target)} := {format_node_set(self.target)} ⋉ "
                f"{format_node_set(self.source)}  [on {format_node_set(self.separator)}]")


@dataclass
class ReductionTrace:
    """Per-step accounting of one reducer run."""

    steps_run: int = 0
    rows_removed: int = 0
    sizes_before: Tuple[int, ...] = ()
    sizes_after: Tuple[int, ...] = ()

    @property
    def reduction_ratio(self) -> float:
        """Fraction of input rows removed by the run (0.0 on empty input)."""
        total = sum(self.sizes_before)
        return (self.rows_removed / total) if total else 0.0


@dataclass(frozen=True)
class FullReducer:
    """A compiled full-reducer program for one rooted join tree.

    The program is derived once per plan and reused across databases with the
    same schema fingerprint (see :mod:`repro.engine.planner`).
    """

    rooted: RootedJoinTree
    steps: Tuple[ReductionStep, ...]

    @classmethod
    def from_join_tree(cls, tree: JoinTree, root: Optional[Edge] = None) -> "FullReducer":
        """Compile the upward+downward semijoin program off a join tree."""
        rooted = tree.rooted(root)
        steps: List[ReductionStep] = []
        for vertex, parent in rooted.leaf_to_root():
            if parent is None:
                continue
            steps.append(ReductionStep(target=parent, source=vertex,
                                       separator=frozenset(vertex & parent), direction="up"))
        for vertex, parent in rooted.root_to_leaf():
            if parent is None:
                continue
            steps.append(ReductionStep(target=vertex, source=parent,
                                       separator=frozenset(vertex & parent), direction="down"))
        return cls(rooted=rooted, steps=tuple(steps))

    def __len__(self) -> int:
        return len(self.steps)

    def with_cost_order(self, estimates: Mapping[Edge, float]) -> "FullReducer":
        """The same program with sibling semijoins ordered smallest-estimated-first.

        ``estimates`` maps join-tree vertices to estimated (reduced)
        cardinalities, e.g. :attr:`CostAnnotation.reduced_estimates
        <repro.engine.catalog.CostAnnotation.reduced_estimates>`.  In both
        passes each parent's sibling steps run in ascending estimate order,
        so the cheapest (and usually most selective) semijoin shrinks the
        shared target first and later probes scan fewer rows.  The regrouping
        keeps every dependency of the two-pass discipline: a parent absorbs a
        child only after the child absorbed its own subtree, and a child is
        re-reduced only after its parent was.
        """
        def rank(vertex: Edge) -> Tuple:
            return (estimates.get(vertex, float("inf")),
                    tuple(sorted_nodes(vertex)))

        steps: List[ReductionStep] = []
        for vertex, _parent in self.rooted.leaf_to_root():
            for child in sorted(self.rooted.children_of(vertex), key=rank):
                steps.append(ReductionStep(target=vertex, source=child,
                                           separator=frozenset(child & vertex),
                                           direction="up"))
        for vertex, _parent in self.rooted.root_to_leaf():
            for child in sorted(self.rooted.children_of(vertex), key=rank):
                steps.append(ReductionStep(target=child, source=vertex,
                                           separator=frozenset(child & vertex),
                                           direction="down"))
        return FullReducer(rooted=self.rooted, steps=tuple(steps))

    def describe(self) -> str:
        """A multi-line listing of the compiled program."""
        if not self.steps:
            return "(empty full reducer)"
        return "\n".join(f"{index + 1:3d}. [{step.direction:4s}] {step.describe()}"
                         for index, step in enumerate(self.steps))

    def _component_map(self) -> Dict[Edge, Edge]:
        """Each vertex mapped to its tree component's root."""
        component: Dict[Edge, Edge] = {}
        for vertex, parent in self.rooted.order:
            component[vertex] = component[parent] if parent is not None else vertex
        return component

    def run(self, relations: Mapping[Edge, Relation], *,
            trace: Optional[ReductionTrace] = None,
            check_hook: Optional[CheckHook] = None) -> VertexMap:
        """Apply the program to a vertex → relation map and return the reduced map.

        The input map must have one relation per join-tree vertex.  When any
        vertex becomes empty, every vertex of its tree component is emptied
        immediately (the join is empty; nothing downstream can survive) and
        the remaining steps of that component are skipped.
        """
        hook = check_hook if check_hook is not None else verify_full_reduction
        return self._run_physical(
            relations,
            semijoin=semijoin_indexed,
            empty=lambda relation: Relation.from_valid_rows(relation.schema,
                                                            frozenset()),
            trace=trace, hook=hook)

    def run_blocks(self, blocks: Mapping[Edge, object], *,
                   trace: Optional[ReductionTrace] = None,
                   check_hook: Optional[CheckHook] = None) -> Dict[Edge, object]:
        """Both full-reducer passes over a vertex → :class:`ColumnBlock` map.

        The columnar twin of :meth:`run`: the same compiled program, the same
        dead-component short-circuit and the same trace accounting, with the
        indexed semijoin swapped for the whole-block kernel
        :func:`~repro.engine.columnar.kernels.semijoin_blocks` — filtering is
        pure selection-vector work, so fixpoint steps allocate nothing.
        """
        from .columnar.kernels import semijoin_blocks  # deferred: import cycle

        hook = check_hook if check_hook is not None else verify_full_reduction_blocks
        return self._run_physical(blocks, semijoin=semijoin_blocks,
                                  empty=lambda block: block.empty(),
                                  trace=trace, hook=hook)

    def _run_physical(self, relations: Mapping[Edge, object], *,
                      semijoin: Callable, empty: Callable,
                      trace: Optional[ReductionTrace], hook: Callable
                      ) -> Dict[Edge, object]:
        """The mode-agnostic reducer loop shared by :meth:`run` and :meth:`run_blocks`."""
        span = current_tracer().span("reduce")
        with span:
            current: Dict[Edge, object] = dict(relations)
            sizes_before = tuple(len(current[vertex]) for vertex, _ in self.rooted.order)
            component_of = self._component_map()
            dead_components: set = set()

            def kill_component(component: Edge) -> int:
                dead_components.add(component)
                emptied = 0
                for vertex, owner in component_of.items():
                    if owner is component and len(current[vertex]):
                        emptied += len(current[vertex])
                        current[vertex] = empty(current[vertex])
                return emptied

            removed = 0
            steps_run = 0
            for vertex, _parent in self.rooted.order:
                if len(current[vertex]) == 0:
                    removed += kill_component(component_of[vertex])
            for step in self.steps:
                if component_of[step.target] in dead_components:
                    continue
                target = current[step.target]
                reduced = semijoin(target, current[step.source],
                                   on=sorted_nodes(step.separator) if step.separator else None)
                steps_run += 1
                if reduced is not target:
                    removed += len(target) - len(reduced)
                    current[step.target] = reduced
                    if len(reduced) == 0:
                        removed += kill_component(component_of[step.target])
            sizes_after = tuple(len(current[vertex]) for vertex, _ in self.rooted.order)
            if trace is not None:
                trace.steps_run += steps_run
                trace.rows_removed += removed
                trace.sizes_before = sizes_before
                trace.sizes_after = sizes_after
            if span.is_recording:
                span.set("vertices", [format_node_set(vertex)
                                      for vertex, _ in self.rooted.order])
                span.set("sizes_before", list(sizes_before))
                span.set("sizes_after", list(sizes_after))
                span.set("rows_removed", removed)
                span.set("steps", steps_run)
            if not hook(current, self.rooted):
                raise ReductionError("proof-of-reduction check failed: a relation is "
                                     "not semijoin-stable against a tree neighbour")
            return current


def verify_full_reduction(relations: Mapping[Edge, Relation],
                          rooted: RootedJoinTree) -> bool:
    """The default proof-of-reduction check: semijoin-stability on every tree edge.

    For every tree edge (child, parent), both ``parent ⋉ child`` and
    ``child ⋉ parent`` must be fixpoints.  On a join tree this local condition
    implies global consistency (no dangling tuples), which is the paper-level
    guarantee the engine's join phase relies on.
    """
    for vertex, parent in rooted.order:
        if parent is None:
            continue
        child_relation = relations[vertex]
        parent_relation = relations[parent]
        if semijoin_indexed(parent_relation, child_relation) is not parent_relation:
            return False
        if semijoin_indexed(child_relation, parent_relation) is not child_relation:
            return False
    return True


def verify_full_reduction_blocks(blocks: Mapping[Edge, object],
                                 rooted: RootedJoinTree) -> bool:
    """The columnar proof-of-reduction check: block semijoin-stability per tree edge.

    Relies on the same identity contract as the row check — a whole-block
    semijoin that filters nothing returns its left block unchanged.
    """
    from .columnar.kernels import semijoin_blocks  # deferred: import cycle

    for vertex, parent in rooted.order:
        if parent is None:
            continue
        child_block = blocks[vertex]
        parent_block = blocks[parent]
        if semijoin_blocks(parent_block, child_block) is not parent_block:
            return False
        if semijoin_blocks(child_block, parent_block) is not child_block:
            return False
    return True
