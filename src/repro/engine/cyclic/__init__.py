"""``repro.engine.cyclic`` — decomposition-based execution for cyclic queries.

The paper's conclusion (Section 7) warns that the universal-relation
construction "will not work when the underlying structure is cyclic: then
some additional semantics, such as proposed in [8], must be applied".  This
subsystem is the engine-level reading of that pointer: instead of silently
falling back to a naive cross-product plan, cyclic query hypergraphs are

1. **covered** (:mod:`~repro.engine.cyclic.covers`) — the cyclic core is
   detected by ear removal and grouped into clusters (candidates scored by
   width and fan-out, minimal-width cover wins);
2. **quotiented** (:mod:`~repro.engine.cyclic.quotient`) — each cluster
   becomes one virtual relation, so the quotient hypergraph is acyclic by
   construction and is validated as such;
3. **compiled** (:mod:`~repro.engine.cyclic.plans` plus
   :meth:`QueryPlanner.cyclic_plan_for <repro.engine.planner.QueryPlanner.cyclic_plan_for>`)
   — the :class:`CyclicExecutionPlan` embeds the quotient's ordinary
   :class:`~repro.engine.planner.ExecutionPlan` and lives in the same LRU
   cache, keyed by an extended schema fingerprint, so cover search runs once
   per schema;
4. **executed** (:mod:`~repro.engine.cyclic.executor`) — clusters are
   materialised with bounded nested-loop joins, the PR-1 full reducer runs on
   the quotient, and the bottom-up join projects early onto the output.

Entry points: :func:`evaluate_cyclic`, :func:`evaluate_cyclic_database`, and
``ConjunctiveQuery.evaluate(database)`` in the query layer, which now
dispatches cyclic queries here (the naive plan remains as an explicit
opt-in only).
"""

from .covers import (
    ClusterCover,
    EdgeCluster,
    choose_cover,
    core_periphery_cover,
    cover_score,
    enumerate_covers,
)
from .executor import CyclicEngineResult, evaluate_cyclic, evaluate_cyclic_database
from .plans import CyclicEngineStatistics, CyclicExecutionPlan
from .quotient import AcyclicQuotient, ClusterMaterialisation, materialise_clusters

__all__ = [
    # cover search
    "EdgeCluster", "ClusterCover", "core_periphery_cover", "enumerate_covers",
    "cover_score", "choose_cover",
    # quotient construction
    "AcyclicQuotient", "ClusterMaterialisation", "materialise_clusters",
    # compilation
    "CyclicExecutionPlan", "CyclicEngineStatistics",
    # execution
    "CyclicEngineResult", "evaluate_cyclic", "evaluate_cyclic_database",
]
