"""Acyclic quotients: the virtual schema a cluster cover induces, plus cluster materialisation.

Once a :class:`~repro.engine.cyclic.covers.ClusterCover` is chosen, each
cluster becomes one *virtual relation* — the join of its member relations —
and the quotient hypergraph (one edge per cluster scheme) is acyclic by
construction, so the PR-1 planner, full reducer and bottom-up join run on it
unchanged.  This module builds and validates that quotient and materialises
the cluster relations with bounded, greedily ordered nested-loop joins (each
next member is picked to share the most attributes with what is already
joined, so equality filters apply as early as possible).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..catalog import StatisticsCatalog

from ...core.acyclicity import is_acyclic
from ...core.hypergraph import Hypergraph
from ...core.nodes import format_node_set, sorted_nodes
from ...exceptions import ClusterBoundExceededError, CyclicHypergraphError, SchemaError
from ...relational.relation import Relation
from ..columnar import ColumnBlock, merge_blocks_by_scheme, natural_join_blocks
from ..semijoin import merge_relations_by_scheme, natural_join_indexed
from .covers import ClusterCover

__all__ = [
    "AcyclicQuotient",
    "materialise_clusters",
    "ClusterMaterialisation",
    "materialise_cluster_blocks",
    "ClusterBlockMaterialisation",
]


@dataclass(frozen=True)
class AcyclicQuotient:
    """A validated quotient: the original hypergraph, its cover, and the acyclic quotient."""

    original: Hypergraph
    cover: ClusterCover
    hypergraph: Hypergraph

    @classmethod
    def build(cls, original: Hypergraph, cover: ClusterCover) -> "AcyclicQuotient":
        """Validate ``cover`` against ``original`` and construct the quotient.

        Raises :class:`~repro.exceptions.SchemaError` when the cover does not
        assign exactly the original's edges and
        :class:`~repro.exceptions.CyclicHypergraphError` when the quotient is
        not acyclic (the cover search never emits such a cover; direct
        construction can).
        """
        if cover.covered_edges != original.edge_set:
            missing = original.edge_set - cover.covered_edges
            foreign = cover.covered_edges - original.edge_set
            detail = []
            if missing:
                detail.append("uncovered edges "
                              + ", ".join(format_node_set(e) for e in
                                          sorted(missing, key=lambda e: sorted_nodes(e))))
            if foreign:
                detail.append("foreign edges "
                              + ", ".join(format_node_set(e) for e in
                                          sorted(foreign, key=lambda e: sorted_nodes(e))))
            raise SchemaError("cluster cover does not match the hypergraph: "
                              + "; ".join(detail))
        quotient = cover.quotient_hypergraph(
            name=f"{original.name or 'H'}/{len(cover.clusters)} clusters")
        if not is_acyclic(quotient):
            raise CyclicHypergraphError(
                "the cover's quotient hypergraph is cyclic; the cluster "
                "grouping does not break every cycle")
        return cls(original=original, cover=cover, hypergraph=quotient)

    def describe(self) -> str:
        """A multi-line rendering: the cover plus the quotient's edges."""
        lines = [self.cover.describe(),
                 f"quotient: {self.hypergraph}"]
        return "\n".join(lines)


@dataclass(frozen=True)
class ClusterMaterialisation:
    """The materialised cluster relations plus per-step tuple accounting."""

    relations: Tuple[Relation, ...]
    intermediate_sizes: Tuple[int, ...]
    cluster_sizes: Tuple[int, ...]


def _greedy_member_order(members: Sequence[object],
                         catalog: Optional["StatisticsCatalog"] = None
                         ) -> List[object]:
    """Join order inside a cluster: smallest first, then maximal attribute overlap.

    ``members`` are :class:`Relation` or :class:`ColumnBlock` values — both
    expose ``len`` and ``schema``, and the ordering keys depend on nothing
    else, so the row and columnar paths pick identical orders.

    Starting from the smallest member and always joining the relation that
    shares the most attributes with the scheme accumulated so far applies
    every equality filter as early as the cluster allows — the bounded
    nested-loop discipline for cyclic cores.

    With a ``catalog`` the overlap tie-break is replaced by estimated
    cardinality: the next member is the one whose estimated join with the
    accumulated intermediate is smallest (the System-R formula over the
    catalog's distinct counts), so a selective-but-narrow member beats a
    wide-overlap member that would multiply rows.
    """
    if catalog is None:
        pending = sorted(members, key=lambda r: (len(r), sorted_nodes(r.schema.attribute_set)))
        ordered = [pending.pop(0)]
        scheme = set(ordered[0].schema.attribute_set)
        while pending:
            best_index = min(
                range(len(pending)),
                key=lambda i: (-len(scheme & pending[i].schema.attribute_set),
                               len(pending[i]),
                               sorted_nodes(pending[i].schema.attribute_set)))
            chosen = pending.pop(best_index)
            scheme |= chosen.schema.attribute_set
            ordered.append(chosen)
        return ordered

    def estimate_of(relation: Relation):
        return catalog.estimate_for(relation.schema.attribute_set,
                                    fallback_cardinality=len(relation))

    pending = sorted(members,
                     key=lambda r: (estimate_of(r).cardinality,
                                    sorted_nodes(r.schema.attribute_set)))
    ordered = [pending.pop(0)]
    accumulated = estimate_of(ordered[0])
    while pending:
        best_index = min(
            range(len(pending)),
            key=lambda i: (accumulated.join(estimate_of(pending[i])).cardinality,
                           sorted_nodes(pending[i].schema.attribute_set)))
        chosen = pending.pop(best_index)
        accumulated = accumulated.join(estimate_of(chosen))
        ordered.append(chosen)
    return ordered


def _materialise_physical(cover: ClusterCover, per_edge, *,
                          join, rename, row_bound: Optional[int],
                          catalog: Optional["StatisticsCatalog"]):
    """The physical-layer-agnostic cluster loop shared by both materialisers.

    Parameterised on ``join(left, right)`` and ``rename(item, name)``
    exactly like the reducer's ``_run_physical`` and the evaluators'
    ``fold_join_tree``, so the member lookup, greedy ordering, ``row_bound``
    discipline and tuple accounting cannot drift between the row and the
    columnar representations.  Returns (items, intermediate sizes, cluster
    sizes).
    """
    items: List[object] = []
    intermediates: List[int] = []
    cluster_sizes: List[int] = []
    for position, cluster in enumerate(cover.clusters):
        members = []
        for edge in cluster.sorted_edges():
            if edge not in per_edge:
                raise SchemaError(f"cluster edge {format_node_set(edge)} has no "
                                  "matching relation")
            members.append(per_edge[edge])
        current = members[0]
        if len(members) > 1:
            ordered = _greedy_member_order(members, catalog)
            current = ordered[0]
            for member in ordered[1:]:
                current = join(current, member)
                intermediates.append(len(current))
                if row_bound is not None and len(current) > row_bound:
                    raise ClusterBoundExceededError(
                        f"cluster {cluster.describe()} produced an intermediate "
                        f"of {len(current)} rows (bound {row_bound})")
        renamed = rename(current, f"cluster{position}")
        items.append(renamed)
        cluster_sizes.append(len(renamed))
    return items, intermediates, cluster_sizes


def materialise_clusters(cover: ClusterCover, relations: Sequence[Relation], *,
                         row_bound: Optional[int] = None,
                         catalog: Optional["StatisticsCatalog"] = None
                         ) -> ClusterMaterialisation:
    """One relation per cluster: the (bounded) join of the cluster's member relations.

    Input relations are grouped by scheme (duplicates over the same scheme
    are intersected, exactly as the acyclic engine does); every cluster edge
    must have a matching relation.  ``row_bound`` caps the size of every
    intra-cluster intermediate — exceeding it raises
    :class:`~repro.exceptions.ClusterBoundExceededError` so callers can fall
    back rather than materialise a runaway core.  ``catalog`` switches the
    intra-cluster nested-loop order to estimated-cardinality-first (see
    :func:`_greedy_member_order`).
    """
    items, intermediates, cluster_sizes = _materialise_physical(
        cover, merge_relations_by_scheme(relations),
        join=natural_join_indexed,
        rename=lambda relation, name: Relation.from_valid_rows(
            relation.schema.rename(name), relation.rows),
        row_bound=row_bound, catalog=catalog)
    return ClusterMaterialisation(relations=tuple(items),
                                  intermediate_sizes=tuple(intermediates),
                                  cluster_sizes=tuple(cluster_sizes))


@dataclass(frozen=True)
class ClusterBlockMaterialisation:
    """The materialised cluster *blocks* plus per-step tuple accounting."""

    blocks: Tuple[ColumnBlock, ...]
    intermediate_sizes: Tuple[int, ...]
    cluster_sizes: Tuple[int, ...]


def materialise_cluster_blocks(cover: ClusterCover, relations: Sequence[Relation], *,
                               row_bound: Optional[int] = None,
                               catalog: Optional["StatisticsCatalog"] = None
                               ) -> ClusterBlockMaterialisation:
    """One :class:`ColumnBlock` per cluster — the columnar twin of
    :func:`materialise_clusters`.

    Input relations are encoded through the per-relation block cache (so
    repeated executions over one database encode nothing), singleton clusters
    are zero-copy renames of their member's block, and multi-member clusters
    are joined with the whole-block kernel in exactly the greedy order the
    row path uses — member ordering keys (size, scheme, catalog estimates)
    are identical across representations, so the recorded intermediate and
    cluster sizes agree step for step.
    """
    items, intermediates, cluster_sizes = _materialise_physical(
        cover, merge_blocks_by_scheme(relations),
        join=natural_join_blocks,
        rename=lambda block, name: block.rename(name),
        row_bound=row_bound, catalog=catalog)
    return ClusterBlockMaterialisation(blocks=tuple(items),
                                       intermediate_sizes=tuple(intermediates),
                                       cluster_sizes=tuple(cluster_sizes))
