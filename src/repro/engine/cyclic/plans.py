"""Compiled cyclic plans and their cost accounting.

A :class:`CyclicExecutionPlan` is the cyclic analogue of
:class:`~repro.engine.planner.ExecutionPlan`: data-independent (it depends
only on the schema hypergraph), compiled once per schema fingerprint, and
cached in the planner's existing LRU under an extended key so that cover
search — the expensive part — runs once per schema.  It embeds the quotient's
ordinary :class:`ExecutionPlan`, so reduction and the bottom-up join reuse the
acyclic machinery verbatim.

:class:`CyclicEngineStatistics` extends
:class:`~repro.engine.planner.EngineStatistics` with the cluster accounting
(materialised sizes and widths) and a ``savings_versus`` helper that reports
the largest-intermediate gap against another plan's statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ...relational.join_plans import JoinStatistics
from ..planner import EngineStatistics, ExecutionPlan, SchemaFingerprint, fingerprint_digest
from .covers import ClusterCover, EdgeCluster
from .quotient import AcyclicQuotient

__all__ = ["CyclicExecutionPlan", "CyclicEngineStatistics"]


@dataclass(frozen=True)
class CyclicExecutionPlan:
    """A compiled plan for one cyclic schema fingerprint: cover, quotient, inner plan.

    ``candidates`` records every valid cover the search enumerated; it is
    what the planner re-scores against a per-database statistics catalog to
    pick a cardinality-aware cover without re-running the search (see
    :meth:`QueryPlanner.cyclic_plan_for
    <repro.engine.planner.QueryPlanner.cyclic_plan_for>`).
    """

    fingerprint: SchemaFingerprint
    cover: ClusterCover
    quotient: AcyclicQuotient
    inner: ExecutionPlan
    candidates: Tuple[ClusterCover, ...] = ()

    @property
    def clusters(self) -> Tuple[EdgeCluster, ...]:
        """The cover's clusters, in canonical order."""
        return self.cover.clusters

    @property
    def is_trivial(self) -> bool:
        """``True`` when every cluster is a singleton (the schema was acyclic)."""
        return self.cover.is_trivial

    def estimated_semijoin_steps(self) -> int:
        """How many semijoin steps one quotient reducer run performs."""
        return self.inner.estimated_semijoin_steps()

    def describe(self) -> str:
        """A multi-line rendering: fingerprint, cover, quotient and inner plan."""
        lines = [f"CyclicExecutionPlan {fingerprint_digest(self.fingerprint)} "
                 f"({len(self.cover.clusters)} clusters, width {self.cover.width}, "
                 f"fan-out {self.cover.fan_out})",
                 self.quotient.describe(),
                 self.inner.describe()]
        return "\n".join(lines)


@dataclass
class CyclicEngineStatistics(EngineStatistics):
    """Engine accounting extended with the cyclic executor's cluster counters.

    ``intermediate_sizes`` (inherited) includes the intra-cluster join steps
    *and* the quotient's bottom-up join steps; ``cluster_sizes`` are the
    materialised cluster relations the quotient reducer then works on.
    """

    cluster_sizes: Tuple[int, ...] = ()
    cluster_widths: Tuple[int, ...] = ()
    estimated_cluster_sizes: Tuple[int, ...] = ()

    @property
    def max_cluster_size(self) -> int:
        """The largest materialised cluster relation (0 with no clusters)."""
        return max(self.cluster_sizes, default=0)

    @property
    def reduction_ratio(self) -> float:
        """Fraction of *cluster* tuples removed as dangling by the quotient reducer.

        The reducer runs on the materialised cluster relations, not on the
        original inputs, so the ratio's denominator is the cluster sizes —
        the inherited definition would divide by the (smaller) original
        inputs and report fractions above 1.
        """
        total = sum(self.cluster_sizes)
        return (self.rows_removed_by_reduction / total) if total else 0.0

    def savings_versus(self, other: JoinStatistics) -> float:
        """How many times smaller this plan's largest intermediate is than ``other``'s."""
        return other.max_intermediate / max(self.max_intermediate, 1)

    def describe(self) -> str:
        """A one-line summary aligned with ``EngineStatistics.describe``."""
        base = super().describe()
        return f"{base} clusters={list(self.cluster_sizes)}"
