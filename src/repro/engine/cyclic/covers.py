"""Cover search: group a cyclic hypergraph's edges into clusters with an acyclic quotient.

The paper's conclusion warns that the universal-relation construction "will
not work when the underlying structure is cyclic"; Maier & Ullman's
maximal-object semantics (ref. [8]) handles cyclicity by interpreting the
schema through maximal acyclic sub-structures.  The engine's operational
counterpart is a **cluster cover**: every edge of the query hypergraph is
assigned to at least one cluster, each cluster is materialised as one virtual
relation (the join of its member edges), and the *quotient* hypergraph — one
edge per cluster, the union of the cluster's members — must be acyclic, so
the PR-1 planner/reducer machinery applies to it unchanged.

The search has two stages:

1. **Core detection** — ear removal (the edge-level form of GYO reduction)
   peels off every edge whose outside-shared nodes are covered by a witness;
   what remains stuck is the cyclic core.  Each connected component of the
   core collapsed to a single cluster always yields an acyclic quotient
   (peeled ears re-attach to the collapsed cluster in reverse order), so a
   valid baseline cover exists for every hypergraph.
2. **Refinement** — small stuck components are additionally partitioned into
   finer clusters (candidate groupings seeded by exhaustive set partitions,
   the same search space :func:`~repro.relational.maximal_objects.enumerate_maximal_objects`
   walks); every candidate cover is validated for quotient acyclicity and
   scored by cluster *width* (attributes a cluster materialises) and
   *fan-out* (edges joined inside one cluster), and the minimal-width cover
   wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import TYPE_CHECKING, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..catalog import StatisticsCatalog

from ...core.acyclicity import is_acyclic
from ...core.components import edge_components
from ...core.hypergraph import Edge, Hypergraph
from ...core.nodes import format_node_set, sorted_nodes
from ...exceptions import CoverSearchBudgetExceededError
from ...telemetry.tracing import current_tracer

__all__ = [
    "EdgeCluster",
    "ClusterCover",
    "core_periphery_cover",
    "enumerate_covers",
    "cover_score",
    "choose_cover",
]

#: Stuck components larger than this are not refined (set partitions are exponential).
_REFINEMENT_EDGE_LIMIT = 7

#: Upper bound on how many candidate covers one search examines.
_CANDIDATE_LIMIT = 256

#: The budget policies of :func:`enumerate_covers` for over-cap core components.
_BUDGET_POLICIES = ("degrade", "raise")


def _edge_sort_key(edge: Edge) -> Tuple:
    return tuple(sorted_nodes(edge))


@dataclass(frozen=True)
class EdgeCluster:
    """One cluster: a set of hypergraph edges materialised as a single virtual relation."""

    edges: FrozenSet[Edge]

    @property
    def attributes(self) -> FrozenSet:
        """The cluster's scheme — the union of its member edges (the quotient edge)."""
        return frozenset().union(*self.edges) if self.edges else frozenset()

    @property
    def width(self) -> int:
        """How many attributes the cluster materialises (the quotient edge's arity)."""
        return len(self.attributes)

    @property
    def fan_out(self) -> int:
        """How many member edges are joined inside the cluster."""
        return len(self.edges)

    @property
    def is_singleton(self) -> bool:
        """``True`` for clusters of a single edge (no intra-cluster join needed)."""
        return len(self.edges) == 1

    def sorted_edges(self) -> Tuple[Edge, ...]:
        """The member edges in canonical order (used by deterministic execution)."""
        return tuple(sorted(self.edges, key=_edge_sort_key))

    def estimated_rows(self, catalog: "StatisticsCatalog") -> int:
        """The estimated cardinality of the cluster's intra-cluster join.

        Folds the member edges' catalog estimates in canonical order with the
        System-R join formula; singletons are just their relation estimate.
        """
        members = self.sorted_edges()
        if not members:
            return 0
        estimate = catalog.estimate_for(members[0])
        for edge in members[1:]:
            estimate = estimate.join(catalog.estimate_for(edge))
        return estimate.rows

    def describe(self) -> str:
        """``{AB, BC} → ABC``-style rendering."""
        members = ", ".join(format_node_set(edge) for edge in self.sorted_edges())
        return f"{{{members}}} → {format_node_set(self.attributes)}"


@dataclass(frozen=True)
class ClusterCover:
    """A cover of a hypergraph's edges by clusters, in canonical cluster order."""

    clusters: Tuple[EdgeCluster, ...]

    @classmethod
    def of(cls, groups: Iterable[Iterable[Edge]]) -> "ClusterCover":
        """Build a cover from edge groups, normalising cluster order."""
        built = [EdgeCluster(edges=frozenset(group)) for group in groups]
        built = [cluster for cluster in built if cluster.edges]
        built.sort(key=lambda cluster: (_edge_sort_key(cluster.attributes),
                                        tuple(_edge_sort_key(e) for e in cluster.sorted_edges())))
        return cls(clusters=tuple(built))

    @property
    def width(self) -> int:
        """The widest cluster's attribute count — the cover's cost headline."""
        return max((cluster.width for cluster in self.clusters), default=0)

    @property
    def fan_out(self) -> int:
        """The largest number of edges joined inside one cluster."""
        return max((cluster.fan_out for cluster in self.clusters), default=0)

    @property
    def covered_edges(self) -> FrozenSet[Edge]:
        """Every hypergraph edge assigned to some cluster."""
        return frozenset().union(*(cluster.edges for cluster in self.clusters)) \
            if self.clusters else frozenset()

    @property
    def quotient_edges(self) -> Tuple[Edge, ...]:
        """The distinct cluster schemes — the edge set of the quotient hypergraph."""
        distinct = {cluster.attributes for cluster in self.clusters}
        return tuple(sorted(distinct, key=_edge_sort_key))

    @property
    def is_trivial(self) -> bool:
        """``True`` when every cluster is a singleton (the quotient is the original)."""
        return all(cluster.is_singleton for cluster in self.clusters)

    def covers(self, hypergraph: Hypergraph) -> bool:
        """``True`` when the cover assigns exactly the hypergraph's edges."""
        return self.covered_edges == hypergraph.edge_set

    def quotient_hypergraph(self, name: Optional[str] = None) -> Hypergraph:
        """The quotient hypergraph: one edge per distinct cluster scheme."""
        return Hypergraph(self.quotient_edges, name=name)

    def describe(self) -> str:
        """A multi-line rendering listing every cluster."""
        lines = [f"ClusterCover ({len(self.clusters)} clusters, "
                 f"width {self.width}, fan-out {self.fan_out})"]
        for cluster in self.clusters:
            lines.append(f"  {cluster.describe()}")
        return "\n".join(lines)


def _ear_removal(edges: Sequence[Edge]) -> Tuple[List[Edge], List[Edge]]:
    """Peel ears off an edge list; return (peeled ears, stuck residual).

    An ear is an edge whose nodes shared with the remaining edges are covered
    by a single witness edge.  The residual is empty or a single edge for
    acyclic inputs and the cyclic core otherwise; like GYO reduction the
    stuck set is order-independent, but the scan order is deterministic
    anyway so that plans are reproducible.
    """
    remaining = list(edges)
    ears: List[Edge] = []
    changed = True
    while changed and len(remaining) > 1:
        changed = False
        for index, edge in enumerate(remaining):
            others = remaining[:index] + remaining[index + 1:]
            outside = frozenset().union(*others)
            shared = edge & outside
            if any(shared <= other for other in others):
                ears.append(remaining.pop(index))
                changed = True
                break
    return ears, remaining


def _attach_empty_edges(groups: List[List[Edge]], empty_edges: List[Edge]) -> List[List[Edge]]:
    """Fold empty edges (0-ary atoms) into the first cluster; they never widen it."""
    if not empty_edges:
        return groups
    if not groups:
        return [list(empty_edges)]
    merged = [list(group) for group in groups]
    merged[0] = merged[0] + list(empty_edges)
    return merged


def _core_decomposition(hypergraph: Hypergraph
                        ) -> Tuple[List[Edge], List[Edge], List[Edge], List[List[Edge]]]:
    """One ear-removal pass: (proper edges, empty edges, ears, core components).

    ``ears`` and the component list are empty for acyclic hypergraphs; cover
    search and the baseline cover both build on this single decomposition so
    the O(E²) ear scan runs once per search.
    """
    proper = [edge for edge in hypergraph.edges if edge]
    empty = [edge for edge in hypergraph.edges if not edge]
    if not proper or is_acyclic(Hypergraph(proper)):
        return proper, empty, [], []
    ears, residual = _ear_removal(proper)
    components = [list(component) for component in edge_components(Hypergraph(residual))]
    return proper, empty, ears, components


def _baseline_groups(proper: List[Edge], ears: List[Edge],
                     components: List[List[Edge]]) -> List[List[Edge]]:
    """Baseline grouping: singleton ears, one group per stuck-core component."""
    if not components:
        return [[edge] for edge in proper]
    return [[edge] for edge in ears] + [list(component) for component in components]


def core_periphery_cover(hypergraph: Hypergraph) -> ClusterCover:
    """The baseline cover: singleton ears, one cluster per stuck-core component.

    Acyclic hypergraphs get the all-singleton (trivial) cover.  For cyclic
    ones the ears peeled by :func:`_ear_removal` stay singletons and each
    connected component of the stuck residual becomes one cluster; the
    resulting quotient is acyclic by construction (collapsing a component to
    the union of its nodes makes every peeled ear an ear again).
    """
    proper, empty, ears, components = _core_decomposition(hypergraph)
    return ClusterCover.of(
        _attach_empty_edges(_baseline_groups(proper, ears, components), empty))


def _set_partitions(items: List[Edge]) -> Iterator[List[List[Edge]]]:
    """All set partitions of ``items`` (callers cap ``len(items)``)."""
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in _set_partitions(rest):
        for index in range(len(partition)):
            yield partition[:index] + [[first] + partition[index]] + partition[index + 1:]
        yield partition + [[first]]


def enumerate_covers(hypergraph: Hypergraph, *,
                     max_component_edges: int = _REFINEMENT_EDGE_LIMIT,
                     max_candidates: int = _CANDIDATE_LIMIT,
                     on_budget: str = "degrade") -> Tuple[ClusterCover, ...]:
    """Enumerate valid candidate covers (acyclic quotient), baseline included.

    Stuck-core components with at most ``max_component_edges`` edges are
    refined by exhaustive set partition; every candidate's quotient is
    validated with the GYO acyclicity test before it is admitted.  The
    baseline :func:`core_periphery_cover` is always part of the result, so
    the enumeration is never empty.

    ``on_budget`` governs core components *beyond* the cap, where exhaustive
    set partition would blow up (Bell numbers): ``"degrade"`` (the default)
    keeps only the greedy collapsed-component candidate for them, while
    ``"raise"`` raises
    :class:`~repro.exceptions.CoverSearchBudgetExceededError` so callers that
    would rather fail than accept an unrefined wide cluster can.
    """
    span = current_tracer().span("cover_search")
    with span:
        covers = _enumerate_covers(hypergraph,
                                   max_component_edges=max_component_edges,
                                   max_candidates=max_candidates,
                                   on_budget=on_budget)
        if span.is_recording:
            span.set("edges", len(hypergraph.edges))
            span.set("candidates", len(covers))
        return covers


def _enumerate_covers(hypergraph: Hypergraph, *,
                      max_component_edges: int,
                      max_candidates: int,
                      on_budget: str) -> Tuple[ClusterCover, ...]:
    """The untraced cover enumeration (see :func:`enumerate_covers`)."""
    if on_budget not in _BUDGET_POLICIES:
        raise ValueError(f"unknown on_budget policy {on_budget!r}; "
                         f"expected one of {_BUDGET_POLICIES}")
    proper, empty, ears, components = _core_decomposition(hypergraph)
    over_budget = [component for component in components
                   if len(component) > max_component_edges]
    if over_budget and on_budget == "raise":
        worst = max(len(component) for component in over_budget)
        raise CoverSearchBudgetExceededError(
            f"cyclic core component with {worst} edges exceeds the refinement "
            f"cap of {max_component_edges}; exhaustive partition search would "
            "blow up — raise max_component_edges, or use on_budget='degrade' "
            "to accept the greedy collapsed-component cover")
    baseline = ClusterCover.of(
        _attach_empty_edges(_baseline_groups(proper, ears, components), empty))
    if baseline.is_trivial or not proper:
        return (baseline,)

    per_component: List[List[List[List[Edge]]]] = []
    for component in components:
        options: List[List[List[Edge]]] = [[list(component)]]
        if 1 < len(component) <= max_component_edges:
            for partition in _set_partitions(sorted(component, key=_edge_sort_key)):
                if len(partition) == 1:
                    continue  # already present as the collapsed baseline option
                options.append(partition)
        per_component.append(options)

    seen: set = set()
    covers: List[ClusterCover] = []

    def admit(candidate: ClusterCover) -> None:
        if candidate.clusters in seen:
            return
        seen.add(candidate.clusters)
        if not candidate.covers(hypergraph):
            return
        if is_acyclic(candidate.quotient_hypergraph()):
            covers.append(candidate)

    admit(baseline)
    for combination in product(*per_component):
        if len(covers) >= max_candidates:
            break
        groups: List[List[Edge]] = [[edge] for edge in ears]
        for partition in combination:
            groups.extend(partition)
        admit(ClusterCover.of(_attach_empty_edges(groups, empty)))
    if not covers:  # unreachable: the baseline always validates
        covers.append(baseline)
    return tuple(covers)


def cover_score(cover: ClusterCover,
                catalog: Optional["StatisticsCatalog"] = None) -> Tuple:
    """The cover's cost tuple (lexicographic; smaller is better).

    Without a catalog the score is the static schema-shape tuple: the widest
    cluster dominates (it bounds the largest relation the quotient reducer
    must index), then the largest intra-cluster join (fan-out), then the
    total width of the non-singleton clusters (how much the executor
    materialises at all), then a deterministic rendering.

    With a ``catalog`` the width/fan-out tie-breaks become cardinality-aware:
    after the width, candidates are compared by the *estimated* largest and
    total materialised cluster cardinality, so two covers of equal width are
    separated by how many rows their cores would actually produce on this
    database — the adaptive half of cover selection.
    """
    materialised = sum(cluster.width for cluster in cover.clusters
                      if not cluster.is_singleton)
    rendering = tuple(cluster.describe() for cluster in cover.clusters)
    if catalog is None:
        return (cover.width, cover.fan_out, materialised, rendering)
    estimates = [cluster.estimated_rows(catalog) for cluster in cover.clusters
                 if not cluster.is_singleton]
    return (cover.width, max(estimates, default=0), sum(estimates),
            cover.fan_out, materialised, rendering)


def choose_cover(hypergraph: Hypergraph, *,
                 max_component_edges: int = _REFINEMENT_EDGE_LIMIT,
                 max_candidates: int = _CANDIDATE_LIMIT,
                 on_budget: str = "degrade",
                 catalog: Optional["StatisticsCatalog"] = None) -> ClusterCover:
    """The minimal-score cover of ``hypergraph`` among the enumerated candidates.

    With a ``catalog`` the candidates are compared by the cardinality-aware
    score (see :func:`cover_score`); ``on_budget`` is forwarded to
    :func:`enumerate_covers`.
    """
    candidates = enumerate_covers(hypergraph, max_component_edges=max_component_edges,
                                  max_candidates=max_candidates, on_budget=on_budget)
    return min(candidates, key=lambda cover: cover_score(cover, catalog=catalog))
