"""End-to-end cyclic join evaluation: materialise clusters, reduce the quotient, join.

The cyclic analogue of :mod:`repro.engine.yannakakis`.  The phases are

1. **plan** — fetch (or compile) the :class:`CyclicExecutionPlan` for the
   schema's hypergraph from the planner's LRU cache (cover search runs once
   per schema fingerprint);
2. **materialise** — evaluate every non-trivial cluster with a bounded,
   greedily ordered nested-loop join (:func:`~repro.engine.cyclic.quotient.materialise_clusters`);
3. **reduce + join** — hand the cluster relations to the acyclic evaluator:
   the quotient is acyclic by construction, so the PR-1 full reducer removes
   every dangling cluster tuple and the bottom-up join with fused projection
   keeps the quotient-level intermediates inside the output + reduced-input
   bound.

Only the intra-cluster joins can exceed that bound, and they are confined to
the cyclic cores — exactly the paper's "additional semantics … must be
applied" boundary made operational.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Sequence

from ...core.hypergraph import Hypergraph
from ...core.nodes import sorted_nodes
from ...exceptions import SchemaError
from ...relational.database import Database
from ...relational.relation import Relation
from ...relational.schema import Attribute
from ..catalog import StatisticsCatalog
from ..indexes import index_cache_info
from ..planner import DEFAULT_PLANNER, QueryPlanner, schema_fingerprint
from ..yannakakis import evaluate as evaluate_acyclic
from .plans import CyclicEngineStatistics, CyclicExecutionPlan
from .quotient import materialise_clusters

__all__ = ["CyclicEngineResult", "evaluate_cyclic", "evaluate_cyclic_database"]


@dataclass(frozen=True)
class CyclicEngineResult:
    """The cyclic engine's answer plus the plan that produced it and its accounting."""

    relation: Relation
    plan: CyclicExecutionPlan
    statistics: CyclicEngineStatistics


def evaluate_cyclic(relations: Sequence[Relation],
                    output_attributes: Optional[Iterable[Attribute]] = None, *,
                    planner: Optional[QueryPlanner] = None,
                    name: str = "cyclic",
                    check_reduction: bool = False,
                    cluster_row_bound: Optional[int] = None,
                    catalog: Optional[StatisticsCatalog] = None,
                    plan: Optional[CyclicExecutionPlan] = None) -> CyclicEngineResult:
    """Evaluate the natural join of ``relations`` (optionally projected), cyclic schemas included.

    Acyclic schemas work too (the cover is trivially all singletons and the
    evaluation degenerates to the acyclic engine), so callers need not test
    acyclicity first.  ``cluster_row_bound`` caps intra-cluster intermediates
    (:class:`~repro.exceptions.ClusterBoundExceededError` beyond it);
    ``check_reduction`` is forwarded to the quotient's reducer.

    ``catalog`` switches on adaptive execution end to end: the cached plan's
    candidate covers are re-scored by estimated cluster cardinality, the
    intra-cluster nested-loop order follows the estimates, and the quotient
    evaluation runs with a fresh *exact* catalog of the just-materialised
    cluster relations (cost-ordered reduction and join).  Answers are always
    identical to the static run.

    ``plan`` supplies an already-resolved :class:`CyclicExecutionPlan` (e.g.
    the one a :class:`~repro.engine.session.PreparedQuery` memoized),
    bypassing the planner lookup — and, adaptively, the per-database cover
    re-scoring — entirely; its fingerprint must match the relations' schema.
    """
    if not relations:
        raise SchemaError("the cyclic engine needs at least one relation to evaluate")
    active_planner = planner if planner is not None else DEFAULT_PLANNER
    hypergraph = Hypergraph([relation.schema.attribute_set for relation in relations])
    wanted: Optional[FrozenSet[Attribute]] = (
        frozenset(output_attributes) if output_attributes is not None else None)
    if wanted is not None and not wanted <= hypergraph.nodes:
        missing = wanted - hypergraph.nodes
        raise SchemaError(f"output attributes {sorted_nodes(missing)} are not in the schema")

    index_before = index_cache_info()
    if plan is None:
        misses_before = active_planner.cache_info().misses
        plan = active_planner.cyclic_plan_for(hypergraph, catalog=catalog)
        plan_cache_hit = active_planner.cache_info().misses == misses_before
    else:
        if plan.fingerprint != schema_fingerprint(hypergraph):
            raise SchemaError("the supplied cyclic execution plan was compiled "
                              "for a different schema fingerprint")
        plan_cache_hit = True

    estimated_cluster_sizes: tuple = ()
    estimated_materialisation: tuple = ()
    if catalog is not None:
        estimated_cluster_sizes = tuple(cluster.estimated_rows(catalog)
                                        for cluster in plan.clusters)
        # Non-singleton clusters contribute intra-cluster join intermediates
        # to ``intermediate_sizes``; their estimated final sizes stand in for
        # those steps so the est-max column stays comparable to the actual.
        estimated_materialisation = tuple(
            estimate for cluster, estimate in zip(plan.clusters,
                                                  estimated_cluster_sizes)
            if not cluster.is_singleton)
    materialised = materialise_clusters(plan.cover, relations,
                                        row_bound=cluster_row_bound, catalog=catalog)
    # The quotient plan is executed from the cyclic plan itself — no second
    # planner lookup, so a small LRU never thrashes between the cyclic plan
    # and its own embedded quotient plan.  Adaptively, the quotient runs with
    # an exact catalog of the materialised clusters: their sizes are known
    # the moment they exist, so the quotient-level annotation is free.
    inner_plan = plan.inner
    inner_catalog = None
    if catalog is not None:
        inner_catalog = StatisticsCatalog.from_relations(materialised.relations)
    inner = evaluate_acyclic(materialised.relations, output_attributes,
                             planner=active_planner, name=name,
                             check_reduction=check_reduction, plan=inner_plan,
                             catalog=inner_catalog)

    index_after = index_cache_info()
    statistics = CyclicEngineStatistics(
        plan_name="engine-cyclic-adaptive" if catalog is not None else "engine-cyclic",
        input_sizes=tuple(len(relation) for relation in relations),
        intermediate_sizes=materialised.intermediate_sizes
        + inner.statistics.intermediate_sizes,
        output_size=len(inner.relation),
        semijoin_steps=inner.statistics.semijoin_steps,
        rows_removed_by_reduction=inner.statistics.rows_removed_by_reduction,
        reduced_sizes=inner.statistics.reduced_sizes,
        plan_cache_hit=plan_cache_hit,
        index_cache_hits=index_after["hits"] - index_before["hits"],
        index_cache_misses=index_after["misses"] - index_before["misses"],
        adaptive=catalog is not None,
        estimated_intermediate_sizes=estimated_materialisation
        + inner.statistics.estimated_intermediate_sizes,
        estimated_output_size=inner.statistics.estimated_output_size,
        cluster_sizes=materialised.cluster_sizes,
        cluster_widths=tuple(cluster.width for cluster in plan.clusters),
        estimated_cluster_sizes=estimated_cluster_sizes,
    )
    return CyclicEngineResult(relation=inner.relation, plan=plan, statistics=statistics)


def evaluate_cyclic_database(database: Database,
                             output_attributes: Optional[Iterable[Attribute]] = None, *,
                             planner: Optional[QueryPlanner] = None,
                             name: str = "U",
                             check_reduction: bool = False,
                             cluster_row_bound: Optional[int] = None,
                             adaptive: bool = False,
                             catalog: Optional[StatisticsCatalog] = None
                             ) -> CyclicEngineResult:
    """Evaluate a database's universal join (optionally projected) via the cyclic engine.

    The cyclic counterpart of :func:`repro.engine.yannakakis.evaluate_database`,
    for schemas whose hypergraph the acyclic engine rejects.  ``adaptive=True``
    (or an explicit ``catalog``) runs the cardinality-aware plan from the
    database's statistics catalog.
    """
    if adaptive and catalog is None:
        catalog = database.statistics_catalog()
    return evaluate_cyclic(database.relations(), output_attributes, planner=planner,
                           name=name, check_reduction=check_reduction,
                           cluster_row_bound=cluster_row_bound, catalog=catalog)
