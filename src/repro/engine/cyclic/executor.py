"""End-to-end cyclic join evaluation: materialise clusters, reduce the quotient, join.

The cyclic analogue of :mod:`repro.engine.yannakakis`.  The phases are

1. **plan** — fetch (or compile) the :class:`CyclicExecutionPlan` for the
   schema's hypergraph from the planner's LRU cache (cover search runs once
   per schema fingerprint);
2. **materialise** — evaluate every non-trivial cluster with a bounded,
   greedily ordered nested-loop join (:func:`~repro.engine.cyclic.quotient.materialise_clusters`);
3. **reduce + join** — hand the cluster relations to the acyclic evaluator:
   the quotient is acyclic by construction, so the PR-1 full reducer removes
   every dangling cluster tuple and the bottom-up join with fused projection
   keeps the quotient-level intermediates inside the output + reduced-input
   bound.

Only the intra-cluster joins can exceed that bound, and they are confined to
the cyclic cores — exactly the paper's "additional semantics … must be
applied" boundary made operational.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from time import perf_counter
from typing import Any, FrozenSet, Iterable, Optional, Sequence, Tuple

from ...core.hypergraph import Hypergraph
from ...core.nodes import sorted_nodes
from ...exceptions import SchemaError
from ...relational.database import Database
from ...relational.relation import Relation
from ...relational.schema import Attribute
from ..catalog import StatisticsCatalog
from ..columnar import (
    ColumnBlock,
    column_cache_info,
    current_interner,
    resolve_column_backend,
    resolve_execution_mode,
    use_column_backend,
)
from ..columnar.executor import catalog_from_blocks, run_columnar_plan, vertex_blocks
from ..deadline import check_deadline
from ..indexes import index_cache_info
from ..planner import DEFAULT_PLANNER, QueryPlanner, annotate_plan, schema_fingerprint
from ..reducer import ReductionTrace
from ..yannakakis import evaluate as evaluate_acyclic, resolve_decode_mode
from ...telemetry.tracing import current_tracer, merge_phase_times
from .plans import CyclicEngineStatistics, CyclicExecutionPlan
from .quotient import materialise_cluster_blocks, materialise_clusters

__all__ = ["CyclicEngineResult", "evaluate_cyclic", "evaluate_cyclic_database"]


# --------------------------------------------------------------------------- #
# Warm-prepare memoisation (columnar path)
# --------------------------------------------------------------------------- #
class _WarmPrepare:
    """Memoised cover/catalog bookkeeping for one (plan, relations, catalog).

    A warm cyclic run re-executes over the *same* plan object (memoised by
    :class:`~repro.engine.session.PreparedQuery`), the same relation tuple
    and the same catalog, yet previously re-derived three prepare-phase
    artefacts every time: the per-cluster cardinality estimates, the
    materialised cluster blocks (immutable, fully determined by cover +
    relations + catalog order keys) and the quotient-level cost annotation.
    This entry caches all three; identity validation (``is`` on every input,
    plus the interner generation) makes a hit exact, and the bounded FIFO
    below keeps eviction trivial.  Fields hold ``(key…, value)`` tuples so a
    racing rebuild swaps atomically — equivalent values, last write wins,
    matching the storage-cache contract in :mod:`repro.engine.columnar.block`.
    """

    __slots__ = ("plan", "relations", "catalog", "estimates",
                 "materialised_state", "annotated_state")

    def __init__(self, plan: CyclicExecutionPlan,
                 relations: Tuple[Relation, ...],
                 catalog: Optional[StatisticsCatalog]) -> None:
        self.plan = plan
        self.relations = relations
        self.catalog = catalog
        #: (estimated_cluster_sizes, estimated_materialisation) or None.
        self.estimates: Optional[Tuple[tuple, tuple]] = None
        #: (row_bound, interner, materialisation) or None.
        self.materialised_state: Optional[Tuple[Any, Any, Any]] = None
        #: (wanted, materialisation identity, annotated plan) or None.
        self.annotated_state: Optional[Tuple[Any, Any, Any]] = None


_WARM_PREPARE_CAP = 32
_WARM_PREPARE_LOCK = threading.Lock()
_WARM_PREPARE_CACHE: "OrderedDict[tuple, _WarmPrepare]" = OrderedDict()


def _warm_prepare_entry(plan: CyclicExecutionPlan,
                        relations: Sequence[Relation],
                        catalog: Optional[StatisticsCatalog]) -> _WarmPrepare:
    """The (validated) memo entry for this exact plan/relations/catalog trio."""
    relations = tuple(relations)
    key = (id(plan), tuple(map(id, relations)),
           None if catalog is None else id(catalog))
    with _WARM_PREPARE_LOCK:
        entry = _WARM_PREPARE_CACHE.get(key)
        if entry is not None and entry.plan is plan \
                and entry.catalog is catalog \
                and len(entry.relations) == len(relations) \
                and all(a is b for a, b in zip(entry.relations, relations)):
            _WARM_PREPARE_CACHE.move_to_end(key)
            return entry
        entry = _WARM_PREPARE_CACHE[key] = _WarmPrepare(plan, relations,
                                                        catalog)
        while len(_WARM_PREPARE_CACHE) > _WARM_PREPARE_CAP:
            _WARM_PREPARE_CACHE.popitem(last=False)
        return entry


@dataclass(frozen=True)
class CyclicEngineResult:
    """The cyclic engine's answer plus the plan that produced it and its accounting.

    Mirrors :class:`~repro.engine.yannakakis.EngineResult`'s decode contract:
    under ``decode="block"`` ``relation`` is ``None`` and :meth:`decoded`
    materialises it lazily from ``block``.
    """

    relation: Optional[Relation]
    plan: CyclicExecutionPlan
    statistics: CyclicEngineStatistics
    block: Optional[ColumnBlock] = None
    result_name: str = "cyclic"

    def decoded(self) -> Relation:
        """The answer as a :class:`Relation`, decoding the block if deferred."""
        if self.relation is not None:
            return self.relation
        if self.block is None:
            raise SchemaError("this result holds neither a decoded relation "
                              "nor a column block")
        relation = self.block.to_relation(self.result_name)
        object.__setattr__(self, "relation", relation)
        return relation


def evaluate_cyclic(relations: Sequence[Relation],
                    output_attributes: Optional[Iterable[Attribute]] = None, *,
                    planner: Optional[QueryPlanner] = None,
                    name: str = "cyclic",
                    check_reduction: bool = False,
                    cluster_row_bound: Optional[int] = None,
                    catalog: Optional[StatisticsCatalog] = None,
                    plan: Optional[CyclicExecutionPlan] = None,
                    execution_mode: Optional[str] = None,
                    column_backend: Optional[str] = None,
                    decode: str = "rows") -> CyclicEngineResult:
    """Evaluate the natural join of ``relations`` (optionally projected), cyclic schemas included.

    Acyclic schemas work too (the cover is trivially all singletons and the
    evaluation degenerates to the acyclic engine), so callers need not test
    acyclicity first.  ``cluster_row_bound`` caps intra-cluster intermediates
    (:class:`~repro.exceptions.ClusterBoundExceededError` beyond it);
    ``check_reduction`` is forwarded to the quotient's reducer.

    ``catalog`` switches on adaptive execution end to end: the cached plan's
    candidate covers are re-scored by estimated cluster cardinality, the
    intra-cluster nested-loop order follows the estimates, and the quotient
    evaluation runs with a fresh *exact* catalog of the just-materialised
    cluster relations (cost-ordered reduction and join).  Answers are always
    identical to the static run.

    ``plan`` supplies an already-resolved :class:`CyclicExecutionPlan` (e.g.
    the one a :class:`~repro.engine.session.PreparedQuery` memoized),
    bypassing the planner lookup — and, adaptively, the per-database cover
    re-scoring — entirely; its fingerprint must match the relations' schema.

    ``execution_mode`` selects the physical layer (``"columnar"`` — the
    process default — or ``"row"``): columnar runs materialise the clusters
    as blocks and feed them straight into the columnar quotient pipeline,
    decoding only the final result.  Answers and all logical accounting are
    byte-identical across modes.
    """
    if not relations:
        raise SchemaError("the cyclic engine needs at least one relation to evaluate")
    mode = resolve_execution_mode(execution_mode)
    decode = resolve_decode_mode(decode, mode)
    active_planner = planner if planner is not None else DEFAULT_PLANNER
    hypergraph = Hypergraph([relation.schema.attribute_set for relation in relations])
    wanted: Optional[FrozenSet[Attribute]] = (
        frozenset(output_attributes) if output_attributes is not None else None)
    if wanted is not None and not wanted <= hypergraph.nodes:
        missing = wanted - hypergraph.nodes
        raise SchemaError(f"output attributes {sorted_nodes(missing)} are not in the schema")

    tracer = current_tracer()
    prepare_span = tracer.span("prepare")
    prepare_started = perf_counter()
    with prepare_span:
        if plan is None:
            misses_before = active_planner.cache_info().misses
            plan = active_planner.cyclic_plan_for(hypergraph, catalog=catalog)
            plan_cache_hit = active_planner.cache_info().misses == misses_before
        else:
            if plan.fingerprint != schema_fingerprint(hypergraph):
                raise SchemaError("the supplied cyclic execution plan was "
                                  "compiled for a different schema fingerprint")
            plan_cache_hit = True
        if prepare_span.is_recording:
            prepare_span.set("kind", "cyclic")
            prepare_span.set("mode", mode)
            prepare_span.set("plan_cache_hit", plan_cache_hit)
            prepare_span.set("adaptive", catalog is not None)
            prepare_span.set("clusters", len(plan.clusters))
    prepare_seconds = perf_counter() - prepare_started
    check_deadline("materialise")

    warm = _warm_prepare_entry(plan, relations, catalog)
    estimated_cluster_sizes: tuple = ()
    estimated_materialisation: tuple = ()
    if catalog is not None:
        estimates = warm.estimates
        if estimates is None:
            estimated_cluster_sizes = tuple(cluster.estimated_rows(catalog)
                                            for cluster in plan.clusters)
            # Non-singleton clusters contribute intra-cluster join
            # intermediates to ``intermediate_sizes``; their estimated final
            # sizes stand in for those steps so the est-max column stays
            # comparable to the actual.
            estimated_materialisation = tuple(
                estimate for cluster, estimate in zip(plan.clusters,
                                                      estimated_cluster_sizes)
                if not cluster.is_singleton)
            warm.estimates = (estimated_cluster_sizes, estimated_materialisation)
        else:
            estimated_cluster_sizes, estimated_materialisation = estimates
    # The quotient plan is executed from the cyclic plan itself — no second
    # planner lookup, so a small LRU never thrashes between the cyclic plan
    # and its own embedded quotient plan.  Adaptively, the quotient runs with
    # an exact catalog of the materialised clusters: their sizes are known
    # the moment they exist, so the quotient-level annotation is free.
    inner_plan = plan.inner
    result_block: Optional[ColumnBlock] = None
    backend_name: Optional[str] = None
    if mode == "columnar":
        # Columnar end to end: the cluster blocks feed the quotient pipeline
        # directly — no decode/re-encode round trip between the phases; only
        # the final quotient result is decoded to a relation (and not even
        # that under decode="block").
        backend = resolve_column_backend(column_backend)
        backend_name = backend.name
        column_before = column_cache_info()
        with use_column_backend(backend):
            materialise_span = tracer.span("materialise")
            materialise_started = perf_counter()
            with materialise_span:
                # Cluster blocks are immutable and fully determined by the
                # cover, the relation tuple and the catalog's order keys, so a
                # warm run (same plan/relations/catalog identities, same row
                # bound, same interner generation) reuses them outright —
                # materialisation dominated warm cyclic prepare time.
                interner = current_interner()
                cached = warm.materialised_state
                if cached is not None and cached[0] == cluster_row_bound \
                        and cached[1] is interner:
                    materialised = cached[2]
                    materialise_cached = True
                else:
                    materialised = materialise_cluster_blocks(plan.cover, relations,
                                                              row_bound=cluster_row_bound,
                                                              catalog=catalog)
                    warm.materialised_state = (cluster_row_bound, interner,
                                               materialised)
                    materialise_cached = False
                if materialise_span.is_recording:
                    materialise_span.set("mode", mode)
                    materialise_span.set("backend", backend_name)
                    materialise_span.set("cached", materialise_cached)
                    materialise_span.set("cluster_sizes",
                                         list(materialised.cluster_sizes))
                    materialise_span.set("intermediates",
                                         list(materialised.intermediate_sizes))
            materialise_seconds = perf_counter() - materialise_started
            check_deadline("encode")
            annotate_started = perf_counter()
            inner_annotated = None
            if catalog is not None:
                annotated_state = warm.annotated_state
                if annotated_state is not None and annotated_state[0] == wanted \
                        and annotated_state[1] is materialised:
                    inner_annotated = annotated_state[2]
                else:
                    inner_annotated = annotate_plan(inner_plan,
                                                    catalog_from_blocks(materialised.blocks),
                                                    output_attributes=wanted)
                    warm.annotated_state = (wanted, materialised, inner_annotated)
            # The quotient-level annotation is planning work, so its time counts
            # toward the prepare phase even though it runs post-materialisation.
            prepare_seconds += perf_counter() - annotate_started
            trace = ReductionTrace()
            encode_started = perf_counter()
            blocks = vertex_blocks(materialised.blocks, inner_plan.vertices)
            encode_seconds = perf_counter() - encode_started
            check_deadline("reduce")
            result_block, inner_intermediates, physical_seconds = run_columnar_plan(
                inner_plan, inner_annotated, blocks, wanted,
                trace=trace, check_reduction=check_reduction)
            result_block = result_block.with_column_order(
                sorted_nodes(result_block.attributes))
            check_deadline("decode")
            if decode == "rows":
                decode_span = tracer.span("decode")
                decode_started = perf_counter()
                with decode_span:
                    relation = result_block.to_relation(name)
                    if decode_span.is_recording:
                        decode_span.set("mode", mode)
                        decode_span.set("backend", backend_name)
                        decode_span.set("output_rows", len(relation))
                decode_seconds = perf_counter() - decode_started
            else:
                relation = None
                decode_seconds = 0.0
        phase_times = (("prepare", prepare_seconds),
                       ("materialise", materialise_seconds),
                       ("encode", encode_seconds),
                       ("reduce", physical_seconds["reduce"]),
                       ("fold", physical_seconds["fold"]),
                       ("decode", decode_seconds))
        column_after = column_cache_info()
        cache_hits = column_after["hits"] - column_before["hits"]
        cache_misses = column_after["misses"] - column_before["misses"]
        semijoin_steps = trace.steps_run
        rows_removed = trace.rows_removed
        reduced_sizes = trace.sizes_after
        inner_estimated = (inner_annotated.annotation.estimated_intermediate_sizes
                           if inner_annotated is not None else ())
        estimated_output = (inner_annotated.annotation.estimated_output_size
                            if inner_annotated is not None else None)
    else:
        index_before = index_cache_info()
        materialise_span = tracer.span("materialise")
        materialise_started = perf_counter()
        with materialise_span:
            materialised = materialise_clusters(plan.cover, relations,
                                                row_bound=cluster_row_bound,
                                                catalog=catalog)
            if materialise_span.is_recording:
                materialise_span.set("mode", mode)
                materialise_span.set("cluster_sizes",
                                     list(materialised.cluster_sizes))
                materialise_span.set("intermediates",
                                     list(materialised.intermediate_sizes))
        materialise_seconds = perf_counter() - materialise_started
        # The inner acyclic evaluation re-checks the ambient deadline between
        # each of its own phases; this covers the materialise boundary.
        check_deadline("encode")
        inner_catalog = None
        if catalog is not None:
            inner_catalog = StatisticsCatalog.from_relations(materialised.relations)
        inner = evaluate_acyclic(materialised.relations, output_attributes,
                                 planner=active_planner, name=name,
                                 check_reduction=check_reduction, plan=inner_plan,
                                 catalog=inner_catalog, execution_mode="row")
        relation = inner.relation
        inner_intermediates = inner.statistics.intermediate_sizes
        semijoin_steps = inner.statistics.semijoin_steps
        rows_removed = inner.statistics.rows_removed_by_reduction
        reduced_sizes = inner.statistics.reduced_sizes
        inner_estimated = inner.statistics.estimated_intermediate_sizes
        estimated_output = inner.statistics.estimated_output_size
        # The inner acyclic run times its own prepare/encode/reduce/fold/
        # decode phases; the outer plan resolution and the cluster
        # materialisation are merged in by name.
        phase_times = merge_phase_times(
            (("prepare", prepare_seconds), ("materialise", materialise_seconds)),
            inner.statistics.phase_times)
        index_after = index_cache_info()
        cache_hits = index_after["hits"] - index_before["hits"]
        cache_misses = index_after["misses"] - index_before["misses"]

    statistics = CyclicEngineStatistics(
        plan_name="engine-cyclic-adaptive" if catalog is not None else "engine-cyclic",
        input_sizes=tuple(len(relation_) for relation_ in relations),
        intermediate_sizes=materialised.intermediate_sizes + tuple(inner_intermediates),
        output_size=len(relation) if relation is not None else len(result_block),
        semijoin_steps=semijoin_steps,
        rows_removed_by_reduction=rows_removed,
        reduced_sizes=reduced_sizes,
        plan_cache_hit=plan_cache_hit,
        index_cache_hits=cache_hits,
        index_cache_misses=cache_misses,
        execution_mode=mode,
        column_backend=backend_name,
        adaptive=catalog is not None,
        estimated_intermediate_sizes=estimated_materialisation + tuple(inner_estimated),
        estimated_output_size=estimated_output,
        cluster_sizes=materialised.cluster_sizes,
        cluster_widths=tuple(cluster.width for cluster in plan.clusters),
        estimated_cluster_sizes=estimated_cluster_sizes,
        phase_times=phase_times,
    )
    return CyclicEngineResult(relation=relation, plan=plan, statistics=statistics,
                              block=result_block, result_name=name)


def evaluate_cyclic_database(database: Database,
                             output_attributes: Optional[Iterable[Attribute]] = None, *,
                             planner: Optional[QueryPlanner] = None,
                             name: str = "U",
                             check_reduction: bool = False,
                             cluster_row_bound: Optional[int] = None,
                             adaptive: bool = False,
                             catalog: Optional[StatisticsCatalog] = None,
                             execution_mode: Optional[str] = None,
                             column_backend: Optional[str] = None,
                             decode: str = "rows") -> CyclicEngineResult:
    """Evaluate a database's universal join (optionally projected) via the cyclic engine.

    The cyclic counterpart of :func:`repro.engine.yannakakis.evaluate_database`,
    for schemas whose hypergraph the acyclic engine rejects.  ``adaptive=True``
    (or an explicit ``catalog``) runs the cardinality-aware plan from the
    database's statistics catalog.
    """
    if adaptive and catalog is None:
        catalog = database.statistics_catalog()
    return evaluate_cyclic(database.relations(), output_attributes, planner=planner,
                           name=name, check_reduction=check_reduction,
                           cluster_row_bound=cluster_row_bound, catalog=catalog,
                           execution_mode=execution_mode,
                           column_backend=column_backend, decode=decode)
