"""End-to-end acyclic join evaluation (Yannakakis' algorithm, engine edition).

The evaluator realises the paper's Section 7 payoff: for an acyclic schema,
"join the objects" can be processed with intermediates bounded by input +
output rather than by the worst intermediate a naive left-deep plan builds.
The phases are

1. **plan** — fetch (or compile) the :class:`~repro.engine.planner.ExecutionPlan`
   for the schema's hypergraph from the planner's LRU cache;
2. **reduce** — run the plan's full reducer (indexed semijoins, leaf-to-root
   then root-to-leaf), leaving no dangling tuples;
3. **join** — fold children into parents bottom-up along the join tree with
   the projection onto (output attributes ∪ live separators) *fused into*
   every join, so dead attributes are never materialised.

Both a sequence of relations (e.g. a conjunctive query's atom relations) and
a whole :class:`~repro.relational.database.Database` can be evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Tuple, Union

from ..core.hypergraph import Edge, Hypergraph
from ..core.nodes import sorted_nodes
from ..exceptions import SchemaError
from ..relational.database import Database
from ..relational.relation import Relation
from ..relational.schema import Attribute, RelationSchema
from .catalog import StatisticsCatalog
from .columnar import (
    ColumnBlock,
    column_cache_info,
    resolve_column_backend,
    resolve_execution_mode,
    use_column_backend,
)
from .columnar.executor import run_columnar_plan, vertex_blocks
from .deadline import check_deadline
from .fold import fold_join_tree
from .indexes import index_cache_info
from .planner import (
    DEFAULT_PLANNER,
    AnnotatedPlan,
    EngineStatistics,
    ExecutionPlan,
    QueryPlanner,
    annotate_plan,
    schema_fingerprint,
)
from .reducer import ReductionTrace
from .semijoin import merge_relations_by_scheme, natural_join_indexed
from ..telemetry.tracing import current_tracer

__all__ = ["DECODE_MODES", "EngineResult", "evaluate", "evaluate_database"]

#: How results cross the engine boundary: ``"rows"`` decodes to a
#: :class:`Relation` eagerly (the default); ``"block"`` hands back the
#: columnar result block and defers decoding until someone asks.
DECODE_MODES = ("rows", "block")


def resolve_decode_mode(decode: str, execution_mode: str) -> str:
    """Validate a decode mode against the physical mode actually running."""
    if decode not in DECODE_MODES:
        raise ValueError(f"unknown decode mode {decode!r}; "
                         f"expected one of {DECODE_MODES}")
    if decode == "block" and execution_mode != "columnar":
        raise ValueError('decode="block" requires the columnar execution '
                         f'mode, not {execution_mode!r}')
    return decode


@dataclass(frozen=True)
class EngineResult:
    """The engine's answer plus the plan that produced it and its accounting.

    Under ``decode="rows"`` (the default) ``relation`` is the decoded answer
    and, in columnar mode, ``block`` additionally exposes the typed result
    block.  Under ``decode="block"`` the engine skips the decode phase
    entirely: ``relation`` is ``None`` and :meth:`decoded` materialises it
    on first request (cached on the result).
    """

    relation: Optional[Relation]
    plan: ExecutionPlan
    statistics: EngineStatistics
    annotated: Optional[AnnotatedPlan] = None
    block: Optional[ColumnBlock] = None
    result_name: str = "yannakakis"

    def decoded(self) -> Relation:
        """The answer as a :class:`Relation`, decoding the block if deferred."""
        if self.relation is not None:
            return self.relation
        if self.block is None:
            raise SchemaError("this result holds neither a decoded relation "
                              "nor a column block")
        relation = self.block.to_relation(self.result_name)
        object.__setattr__(self, "relation", relation)
        return relation


def _SKIP_CHECK(relations, rooted) -> bool:
    """The no-op proof-of-reduction hook used when ``check_reduction`` is off."""
    return True


def _project_validated(relation: Relation, keep: FrozenSet[Attribute],
                       name: Optional[str] = None) -> Relation:
    """Project a relation onto ``keep`` without re-validating rows (hot path)."""
    order = relation.schema.project_order(keep & relation.schema.attribute_set)
    return Relation.from_valid_rows(
        RelationSchema.of(name or relation.name, order),
        frozenset(row.project(order) for row in relation.rows))


def _vertex_relations(relations: Sequence[Relation],
                      vertices: Tuple[Edge, ...]) -> Dict[Edge, Relation]:
    """One relation per join-tree vertex (same-scheme relations intersected)."""
    merged = merge_relations_by_scheme(relations)
    result: Dict[Edge, Relation] = {}
    for vertex in vertices:
        combined = merged.get(vertex)
        if combined is None:
            raise SchemaError("join-tree vertex without a matching relation")
        result[vertex] = combined
    return result


def evaluate(relations: Sequence[Relation],
             output_attributes: Optional[Iterable[Attribute]] = None, *,
             planner: Optional[QueryPlanner] = None,
             root: Optional[Edge] = None,
             name: str = "yannakakis",
             check_reduction: bool = False,
             plan: Optional[Union[ExecutionPlan, AnnotatedPlan]] = None,
             catalog: Optional[StatisticsCatalog] = None,
             execution_mode: Optional[str] = None,
             column_backend: Optional[str] = None,
             decode: str = "rows") -> EngineResult:
    """Evaluate the natural join of ``relations`` (optionally projected) via the engine.

    Raises :class:`~repro.exceptions.CyclicHypergraphError` when the schemas'
    hypergraph is cyclic, and :class:`~repro.exceptions.SchemaError` when an
    output attribute is not in scope.  ``check_reduction=True`` runs the
    reducer's proof-of-reduction hook after the semijoin passes (two extra
    semijoin scans per tree edge) — a debug/audit aid, off by default so the
    production path pays only the reducer itself.  ``plan`` supplies an
    already-compiled plan (e.g. the one a :class:`CyclicExecutionPlan`
    embeds) — plain or annotated — bypassing the planner lookup entirely;
    its fingerprint must match the relations' schema.

    ``catalog`` switches on adaptive execution: the structure plan is
    composed with a :class:`~repro.engine.catalog.CostAnnotation` and the
    run uses the cost-ordered reducer, the cardinality-chosen root and the
    estimated-smallest-first child fold order.  The answer is always
    identical to the static run — only the intermediate sizes (and the
    estimated-vs-actual statistics columns) change.

    ``execution_mode`` selects the physical layer: ``"columnar"`` (the
    process default) runs the reducer and the join fold on whole
    :class:`~repro.engine.columnar.ColumnBlock` values and decodes to a
    :class:`Relation` only at the result boundary; ``"row"`` is the original
    row-at-a-time reference implementation.  Results and all logical
    accounting are byte-identical across modes.

    ``column_backend`` pins the columnar compute backend (``"array"`` or
    ``"numpy"``) for this evaluation; ``None`` keeps the ambient default.
    ``decode="block"`` (columnar only) skips the decode phase and returns a
    result whose ``relation`` is materialised lazily via
    :meth:`EngineResult.decoded`.
    """
    if not relations:
        raise SchemaError("the engine needs at least one relation to evaluate")
    mode = resolve_execution_mode(execution_mode)
    decode = resolve_decode_mode(decode, mode)
    active_planner = planner if planner is not None else DEFAULT_PLANNER
    hypergraph = Hypergraph([relation.schema.attribute_set for relation in relations])
    universe = hypergraph.nodes
    wanted: Optional[FrozenSet[Attribute]] = (
        frozenset(output_attributes) if output_attributes is not None else None)
    if wanted is not None and not wanted <= universe:
        missing = wanted - universe
        raise SchemaError(f"output attributes {sorted_nodes(missing)} are not in the schema")

    tracer = current_tracer()
    annotated: Optional[AnnotatedPlan] = None
    prepare_span = tracer.span("prepare")
    prepare_started = perf_counter()
    with prepare_span:
        if plan is None:
            # Misses, not hits: the adaptive path may serve the default-root
            # plan from cache (a hit) and still compile its re-rooted
            # structure (a miss) in the same call — only "no compilation
            # happened" counts.
            plan_misses_before = active_planner.cache_info().misses
            if catalog is not None:
                annotated = active_planner.annotate(hypergraph, catalog,
                                                    output_attributes=wanted,
                                                    root=root)
                plan = annotated.structure
            else:
                plan = active_planner.plan_for(hypergraph, root=root)
            plan_cache_hit = active_planner.cache_info().misses == plan_misses_before
        else:
            if isinstance(plan, AnnotatedPlan):
                annotated = plan
                plan = annotated.structure
            elif catalog is not None:
                annotated = annotate_plan(plan, catalog, output_attributes=wanted)
            if plan.fingerprint != schema_fingerprint(hypergraph):
                raise SchemaError("the supplied execution plan was compiled for "
                                  "a different schema fingerprint")
            plan_cache_hit = True
        if prepare_span.is_recording:
            prepare_span.set("kind", "acyclic")
            prepare_span.set("mode", mode)
            prepare_span.set("plan_cache_hit", plan_cache_hit)
            prepare_span.set("adaptive", annotated is not None)
    prepare_seconds = perf_counter() - prepare_started
    check_deadline("encode")

    trace = ReductionTrace()
    result_block: Optional[ColumnBlock] = None
    backend_name: Optional[str] = None
    if mode == "columnar":
        # Columnar physical layer: encode once (cached per relation), reduce
        # and join whole blocks, decode only the final result — or not at
        # all under decode="block".
        backend = resolve_column_backend(column_backend)
        backend_name = backend.name
        column_before = column_cache_info()
        with use_column_backend(backend):
            encode_started = perf_counter()
            blocks = vertex_blocks(relations, plan.vertices)
            encode_seconds = perf_counter() - encode_started
            check_deadline("reduce")
            result_block, intermediate_sizes, physical_seconds = run_columnar_plan(
                plan, annotated, blocks, wanted,
                trace=trace, check_reduction=check_reduction)
            # Canonical result column order: the fold's output order is
            # annotation-dependent, so the boundary sorts it — making the
            # order deterministic across plans, modes and shards.
            result_block = result_block.with_column_order(
                sorted_nodes(result_block.attributes))
            check_deadline("decode")
            if decode == "rows":
                decode_span = tracer.span("decode")
                decode_started = perf_counter()
                with decode_span:
                    result = result_block.to_relation(name)
                    if decode_span.is_recording:
                        decode_span.set("mode", mode)
                        decode_span.set("backend", backend_name)
                        decode_span.set("output_rows", len(result))
                decode_seconds = perf_counter() - decode_started
            else:
                result = None
                decode_seconds = 0.0
        intermediates = list(intermediate_sizes)
        column_after = column_cache_info()
        cache_hits = column_after["hits"] - column_before["hits"]
        cache_misses = column_after["misses"] - column_before["misses"]
    else:
        index_before = index_cache_info()
        encode_span = tracer.span("encode")
        encode_started = perf_counter()
        with encode_span:
            vertex_relations = _vertex_relations(relations, plan.vertices)
            if encode_span.is_recording:
                encode_span.set("mode", mode)
                encode_span.set("vertices", len(vertex_relations))
                encode_span.set("input_rows",
                                sum(len(r) for r in vertex_relations.values()))
        encode_seconds = perf_counter() - encode_started
        check_deadline("reduce")

        # Phase 2: full reduction (the cost-ordered program when annotated).
        reducer = annotated.reducer if annotated is not None else plan.reducer
        reduce_started = perf_counter()
        reduced = reducer.run(vertex_relations, trace=trace,
                              check_hook=None if check_reduction else _SKIP_CHECK)
        reduce_seconds = perf_counter() - reduce_started
        check_deadline("fold")

        # Phase 3: the shared bottom-up join fold with the row operators
        # plugged in (fused projection lives in fold_join_tree).
        fold_started = perf_counter()
        result, intermediates = fold_join_tree(
            plan.rooted, reduced, wanted,
            order_children=(annotated.order_children if annotated is not None
                            else lambda vertex, children: children),
            join=lambda left, right, keep: natural_join_indexed(left, right,
                                                                project_onto=keep),
            project=_project_validated,
            attributes_of=lambda relation: relation.schema.attribute_set)
        fold_seconds = perf_counter() - fold_started
        physical_seconds = {"reduce": reduce_seconds, "fold": fold_seconds}
        check_deadline("decode")

        decode_span = tracer.span("decode")
        decode_started = perf_counter()
        with decode_span:
            # Same canonical column order as the columnar boundary (rows are
            # attribute-order-insensitive, so only the schema is rebuilt).
            ordered = tuple(sorted_nodes(result.schema.attributes))
            if result.name != name or result.schema.attributes != ordered:
                result = Relation.from_valid_rows(
                    RelationSchema.of(name, ordered), result.rows)
            if decode_span.is_recording:
                decode_span.set("mode", mode)
                decode_span.set("output_rows", len(result))
        decode_seconds = perf_counter() - decode_started

        index_after = index_cache_info()
        cache_hits = index_after["hits"] - index_before["hits"]
        cache_misses = index_after["misses"] - index_before["misses"]

    phase_times = (("prepare", prepare_seconds),
                   ("encode", encode_seconds),
                   ("reduce", physical_seconds["reduce"]),
                   ("fold", physical_seconds["fold"]),
                   ("decode", decode_seconds))
    statistics = EngineStatistics(
        plan_name="engine-yannakakis-adaptive" if annotated is not None
        else "engine-yannakakis",
        input_sizes=tuple(len(relation) for relation in relations),
        intermediate_sizes=tuple(intermediates),
        output_size=len(result) if result is not None else len(result_block),
        semijoin_steps=trace.steps_run,
        rows_removed_by_reduction=trace.rows_removed,
        reduced_sizes=trace.sizes_after,
        plan_cache_hit=plan_cache_hit,
        index_cache_hits=cache_hits,
        index_cache_misses=cache_misses,
        execution_mode=mode,
        column_backend=backend_name,
        adaptive=annotated is not None,
        estimated_intermediate_sizes=(
            annotated.annotation.estimated_intermediate_sizes
            if annotated is not None else ()),
        estimated_output_size=(annotated.annotation.estimated_output_size
                               if annotated is not None else None),
        phase_times=phase_times,
    )
    return EngineResult(relation=result, plan=plan, statistics=statistics,
                        annotated=annotated, block=result_block,
                        result_name=name)


def evaluate_database(database: Database,
                      output_attributes: Optional[Iterable[Attribute]] = None, *,
                      planner: Optional[QueryPlanner] = None,
                      root: Optional[Edge] = None,
                      name: str = "U",
                      check_reduction: bool = False,
                      adaptive: bool = False,
                      catalog: Optional[StatisticsCatalog] = None,
                      execution_mode: Optional[str] = None,
                      column_backend: Optional[str] = None,
                      decode: str = "rows") -> EngineResult:
    """Evaluate a database's universal join (optionally projected) via the engine.

    The engine counterpart of :func:`repro.relational.yannakakis.yannakakis_join`;
    results agree, but this path reuses cached plans and hash indexes.
    ``adaptive=True`` (or an explicit ``catalog``) runs the cardinality-aware
    plan: the database's statistics catalog annotates the cached structure
    plan with a data-dependent root and fold order.
    """
    if adaptive and catalog is None:
        catalog = database.statistics_catalog()
    return evaluate(database.relations(), output_attributes, planner=planner,
                    root=root, name=name, check_reduction=check_reduction,
                    catalog=catalog, execution_mode=execution_mode,
                    column_backend=column_backend, decode=decode)
