"""Per-database statistics catalogs and the cost annotations they license.

The planner's :class:`~repro.engine.planner.ExecutionPlan` is deliberately
data-independent — it depends only on the schema's hypergraph and is cached
by fingerprint.  Everything *data-dependent* about planning lives here:

* :class:`RelationStatistics` — one relation's measured cardinality and
  per-attribute distinct counts (exact, or extrapolated from a row sample);
* :class:`StatisticsCatalog` — the per-database collection of those
  measurements plus the textbook estimators built on them (join selectivity,
  join/semijoin output sizes);
* :class:`JoinEstimate` — a symbolic relation used while *simulating* plans:
  a scheme, an estimated cardinality and estimated per-attribute distinct
  counts, closed under join and projection;
* :class:`CostAnnotation` — the result of simulating the bottom-up join over
  a join tree with catalog estimates: a data-dependent root choice, a
  per-parent child fold order, per-vertex cardinality estimates and the
  predicted intermediate sizes.

:func:`annotate_tree` is the annotation compiler.  It mirrors the fused
projection of :func:`repro.engine.yannakakis.evaluate` step for step, so the
order it recommends is evaluated against exactly the intermediates it
predicted; the estimated-vs-actual columns of
:func:`repro.analysis.reports.statistics_table` make the comparison visible.

Estimates use the classical System-R assumptions (uniformity, independence,
containment of value sets): a join's size is ``|L|·|R| / Π max(d_L(a),
d_R(a))`` over the shared attributes, a projection onto ``K`` keeps at most
``Π d(a)`` rows, and a semijoin keeps the fraction ``min(1, d_src/d_tgt)``
per separator attribute.  They are wrong in detail and useful in aggregate —
the annotation only needs the *ordering* of candidate plans to be right.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.hypergraph import Edge
from ..core.join_tree import JoinTree, RootedJoinTree
from ..core.nodes import format_node_set, node_sort_key, sorted_nodes
from ..relational.relation import Relation
from ..relational.schema import Attribute

__all__ = [
    "RelationStatistics",
    "StatisticsCatalog",
    "JoinEstimate",
    "CostAnnotation",
    "annotate_tree",
]

#: Root-candidate enumeration is O(vertices²); beyond this many join-tree
#: vertices the annotation keeps the structure plan's default root and only
#: adapts the child fold order.
_MAX_ROOT_CANDIDATES = 16


def _edge_key(edge: Edge) -> Tuple:
    return tuple(node_sort_key(node) for node in sorted_nodes(edge))


def _rows(estimate: float) -> int:
    """Round a fractional cardinality estimate to whole rows (never negative)."""
    return max(int(estimate + 0.5), 0)


# --------------------------------------------------------------------------- #
# Measurements
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class RelationStatistics:
    """Measured statistics of one relation: cardinality and distinct counts.

    ``exact`` is ``False`` when the distinct counts were extrapolated from a
    row sample (see :meth:`measure`'s ``sample_limit``); the cardinality is
    always exact (``len`` is free on a materialised relation).
    """

    edge: Edge
    cardinality: int
    distinct_counts: Mapping[Attribute, int]
    exact: bool = True

    @classmethod
    def measure(cls, relation: Relation, *,
                sample_limit: Optional[int] = None) -> "RelationStatistics":
        """Measure a relation, optionally from a bounded row sample.

        With ``sample_limit`` below the relation's size, distinct counts are
        computed over the first ``sample_limit`` rows of the relation's
        deterministic iteration order and scaled linearly — the cheap refresh
        a serving system can afford on every write burst, and reproducible
        across processes (a raw ``frozenset`` walk would vary with the hash
        seed).  Scaled counts are clamped to the cardinality.
        """
        attributes = relation.schema.attributes
        size = len(relation)
        if sample_limit is not None and sample_limit < 1:
            raise ValueError("sample_limit must be at least 1")
        if sample_limit is not None and size > sample_limit:
            sample = list(islice(iter(relation), sample_limit))
            scale = size / len(sample)
            distinct = {
                attribute: min(size, _rows(len({row[attribute] for row in sample}) * scale))
                for attribute in attributes
            }
            return cls(edge=relation.schema.attribute_set, cardinality=size,
                       distinct_counts=distinct, exact=False)
        distinct = {attribute: len({row[attribute] for row in relation.rows})
                    for attribute in attributes}
        return cls(edge=relation.schema.attribute_set, cardinality=size,
                   distinct_counts=distinct, exact=True)

    def merged_with(self, other: "RelationStatistics") -> "RelationStatistics":
        """Combine measurements of two same-scheme relations.

        Same-scheme relations are intersected by the engine (see
        :func:`repro.engine.semijoin.merge_relations_by_scheme`), so the
        combined estimate takes the minimum cardinality and distinct counts.
        """
        if other.edge != self.edge:
            raise ValueError("cannot merge statistics over different schemes")
        distinct = {attribute: min(self.distinct_counts.get(attribute, self.cardinality),
                                   other.distinct_counts.get(attribute, other.cardinality))
                    for attribute in self.edge}
        return RelationStatistics(edge=self.edge,
                                  cardinality=min(self.cardinality, other.cardinality),
                                  distinct_counts=distinct,
                                  exact=self.exact and other.exact)

    def estimate(self) -> "JoinEstimate":
        """The measurement as a symbolic relation for plan simulation."""
        return JoinEstimate(self.edge, self.cardinality, self.distinct_counts)

    def describe(self) -> str:
        """``{A, B}: 120 rows, distinct A=30 B=4``-style rendering."""
        parts = " ".join(f"{attribute}={self.distinct_counts[attribute]}"
                         for attribute in sorted_nodes(self.edge))
        marker = "" if self.exact else " (sampled)"
        return f"{format_node_set(self.edge)}: {self.cardinality} rows{marker}" \
               + (f", distinct {parts}" if parts else "")


class StatisticsCatalog:
    """A per-database collection of relation statistics plus estimators.

    The catalog is keyed by *scheme* (the relation's attribute set — the
    hypergraph edge), matching how the engine maps relations onto join-tree
    vertices and cluster members.  Duplicate schemes are merged with
    :meth:`RelationStatistics.merged_with`.
    """

    def __init__(self, statistics: Iterable[RelationStatistics] = ()) -> None:
        self._by_edge: Dict[Edge, RelationStatistics] = {}
        for entry in statistics:
            existing = self._by_edge.get(entry.edge)
            self._by_edge[entry.edge] = entry if existing is None \
                else existing.merged_with(entry)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_relations(cls, relations: Sequence[Relation], *,
                       sample_limit: Optional[int] = None) -> "StatisticsCatalog":
        """Measure every relation (same-scheme duplicates merged)."""
        return cls(RelationStatistics.measure(relation, sample_limit=sample_limit)
                   for relation in relations)

    @classmethod
    def from_database(cls, database, *,
                      sample_limit: Optional[int] = None) -> "StatisticsCatalog":
        """Measure every relation of a :class:`~repro.relational.database.Database`."""
        return cls.from_relations(database.relations(), sample_limit=sample_limit)

    def refreshed(self, source, *,
                  sample_limit: Optional[int] = None) -> "StatisticsCatalog":
        """A fresh catalog re-measured from a database or relation sequence."""
        relations = source.relations() if hasattr(source, "relations") else source
        return StatisticsCatalog.from_relations(tuple(relations),
                                                sample_limit=sample_limit)

    def with_edge_remeasured(self, edge: Iterable[Attribute],
                             relations: Sequence[Relation], *,
                             sample_limit: Optional[int] = None
                             ) -> "StatisticsCatalog":
        """A catalog with one scheme's statistics replaced, the rest reused.

        The incremental-maintenance primitive behind
        :meth:`Database.with_relation
        <repro.relational.database.Database.with_relation>`: when a single
        relation instance is swapped, only its scheme needs re-measuring —
        every other edge's :class:`RelationStatistics` carries over
        unchanged.  ``relations`` are *all* the (new) instances over
        ``edge`` (same-scheme instances are merged, exactly as
        :meth:`from_relations` would); an empty sequence simply drops the
        scheme.
        """
        scheme = frozenset(edge)
        for relation in relations:
            if relation.schema.attribute_set != scheme:
                raise ValueError("with_edge_remeasured got a relation over a "
                                 "different scheme than the edge being replaced")
        entries = [entry for entry in self._by_edge.values() if entry.edge != scheme]
        entries.extend(RelationStatistics.measure(relation, sample_limit=sample_limit)
                       for relation in relations)
        return StatisticsCatalog(entries)

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._by_edge)

    def __contains__(self, edge: object) -> bool:
        return frozenset(edge) in self._by_edge  # type: ignore[arg-type]

    @property
    def edges(self) -> Tuple[Edge, ...]:
        """The measured schemes, in canonical order."""
        return tuple(sorted(self._by_edge, key=_edge_key))

    @property
    def is_exact(self) -> bool:
        """``True`` when no measurement was sampled."""
        return all(entry.exact for entry in self._by_edge.values())

    def statistics_for(self, edge: Iterable[Attribute]) -> Optional[RelationStatistics]:
        """The measurement for a scheme, or ``None`` when it was never measured."""
        return self._by_edge.get(frozenset(edge))

    def cardinality(self, edge: Iterable[Attribute],
                    default: Optional[int] = None) -> Optional[int]:
        """The estimated row count of the relation over ``edge``."""
        entry = self._by_edge.get(frozenset(edge))
        return entry.cardinality if entry is not None else default

    def distinct_count(self, edge: Iterable[Attribute], attribute: Attribute,
                       default: Optional[int] = None) -> Optional[int]:
        """The estimated distinct values of ``attribute`` within one relation."""
        entry = self._by_edge.get(frozenset(edge))
        if entry is None:
            return default
        return entry.distinct_counts.get(attribute, entry.cardinality)

    def attribute_distinct(self, attribute: Attribute,
                           default: Optional[int] = None) -> Optional[int]:
        """The estimated distinct values of ``attribute`` in the universal join.

        Under the containment assumption this is the *minimum* over the
        relations whose scheme mentions the attribute.
        """
        counts = [entry.distinct_counts.get(attribute, entry.cardinality)
                  for entry in self._by_edge.values() if attribute in entry.edge]
        return min(counts) if counts else default

    def _fallback_cardinality(self) -> int:
        """The stand-in cardinality for schemes the catalog never measured."""
        if not self._by_edge:
            return 1
        total = sum(entry.cardinality for entry in self._by_edge.values())
        return max(1, total // len(self._by_edge))

    def estimate_for(self, edge: Iterable[Attribute],
                     fallback_cardinality: Optional[int] = None) -> "JoinEstimate":
        """A symbolic relation for ``edge``: measured, or a neutral fallback.

        Unmeasured schemes get ``fallback_cardinality`` rows (the catalog's
        mean cardinality when not supplied) with every attribute fully
        distinct — deliberately uninformative, so adaptive ordering never
        *prefers* a scheme it knows nothing about.
        """
        scheme = frozenset(edge)
        entry = self._by_edge.get(scheme)
        if entry is not None:
            return entry.estimate()
        cardinality = fallback_cardinality if fallback_cardinality is not None \
            else self._fallback_cardinality()
        return JoinEstimate(scheme, cardinality,
                            {attribute: cardinality for attribute in scheme})

    # ------------------------------------------------------------------ #
    # Estimators
    # ------------------------------------------------------------------ #
    def join_selectivity(self, left: Iterable[Attribute],
                         right: Iterable[Attribute]) -> float:
        """``Π 1/max(d_L(a), d_R(a))`` over the shared attributes (1.0 if none)."""
        left_edge, right_edge = frozenset(left), frozenset(right)
        selectivity = 1.0
        for attribute in left_edge & right_edge:
            left_distinct = self.distinct_count(left_edge, attribute, default=1) or 1
            right_distinct = self.distinct_count(right_edge, attribute, default=1) or 1
            selectivity /= max(left_distinct, right_distinct, 1)
        return selectivity

    def estimate_join_size(self, left: Iterable[Attribute],
                           right: Iterable[Attribute]) -> int:
        """The System-R estimate of ``|L ⋈ R|`` for two measured schemes."""
        joined = self.estimate_for(left).join(self.estimate_for(right))
        return _rows(joined.cardinality)

    def estimate_semijoin_size(self, target: Iterable[Attribute],
                               source: Iterable[Attribute]) -> int:
        """The estimated size of ``target ⋉ source``."""
        target_est = self.estimate_for(target)
        source_est = self.estimate_for(source)
        return _rows(target_est.cardinality
                     * target_est.semijoin_selectivity(source_est))

    def describe(self) -> str:
        """A multi-line rendering, one measured scheme per line."""
        lines = [f"StatisticsCatalog ({len(self._by_edge)} schemes, "
                 f"{'exact' if self.is_exact else 'sampled'})"]
        for edge in self.edges:
            lines.append(f"  {self._by_edge[edge].describe()}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"StatisticsCatalog({len(self._by_edge)} schemes)"


# --------------------------------------------------------------------------- #
# Symbolic relations for plan simulation
# --------------------------------------------------------------------------- #
class JoinEstimate:
    """A symbolic relation: scheme + estimated cardinality + distinct counts.

    Closed under :meth:`join` and :meth:`project`, which apply the System-R
    formulas, so a whole query plan can be "executed" on estimates alone.
    Distinct counts are clamped into ``[0 or 1, cardinality]`` on every
    construction, keeping the estimates self-consistent.
    """

    __slots__ = ("attributes", "cardinality", "distincts")

    def __init__(self, attributes: Iterable[Attribute], cardinality: float,
                 distincts: Mapping[Attribute, float]) -> None:
        self.attributes: FrozenSet[Attribute] = frozenset(attributes)
        self.cardinality: float = max(float(cardinality), 0.0)
        floor = 1.0 if self.cardinality >= 1.0 else 0.0
        self.distincts: Dict[Attribute, float] = {
            attribute: max(min(float(distincts.get(attribute, self.cardinality)),
                               self.cardinality), floor)
            for attribute in self.attributes
        }

    def join(self, other: "JoinEstimate") -> "JoinEstimate":
        """The estimated natural join of two symbolic relations."""
        shared = self.attributes & other.attributes
        cardinality = self.cardinality * other.cardinality
        for attribute in shared:
            cardinality /= max(self.distincts[attribute], other.distincts[attribute], 1.0)
        merged: Dict[Attribute, float] = {}
        for attribute in self.attributes | other.attributes:
            if attribute in shared:
                merged[attribute] = min(self.distincts[attribute],
                                        other.distincts[attribute])
            elif attribute in self.attributes:
                merged[attribute] = self.distincts[attribute]
            else:
                merged[attribute] = other.distincts[attribute]
        return JoinEstimate(self.attributes | other.attributes, cardinality, merged)

    def project(self, attributes: Iterable[Attribute]) -> "JoinEstimate":
        """The estimated duplicate-eliminating projection onto ``attributes``."""
        kept = frozenset(attributes) & self.attributes
        if not kept:
            return JoinEstimate(frozenset(), min(self.cardinality, 1.0), {})
        bound = 1.0
        for attribute in kept:
            bound *= self.distincts[attribute]
        return JoinEstimate(kept, min(self.cardinality, bound), self.distincts)

    def semijoin_selectivity(self, source: "JoinEstimate") -> float:
        """The estimated surviving fraction of ``self ⋉ source``."""
        selectivity = 1.0
        for attribute in self.attributes & source.attributes:
            own = self.distincts[attribute]
            if own <= 0.0:
                continue
            selectivity *= min(1.0, source.distincts[attribute] / own)
        return selectivity

    def scaled(self, factor: float) -> "JoinEstimate":
        """The same scheme with the cardinality scaled by ``factor``."""
        return JoinEstimate(self.attributes, self.cardinality * factor, self.distincts)

    @property
    def rows(self) -> int:
        """The cardinality rounded to whole rows."""
        return _rows(self.cardinality)

    def __repr__(self) -> str:
        return (f"JoinEstimate({format_node_set(self.attributes)}, "
                f"~{self.rows} rows)")


# --------------------------------------------------------------------------- #
# Cost annotations
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class CostAnnotation:
    """The data-dependent half of a plan: root, fold order, size predictions.

    ``root`` is ``None`` when the structure plan's default rooting already
    minimises the predicted largest intermediate; ``child_order`` maps each
    join-tree vertex to the order its children should be folded in during the
    bottom-up join (and the order the reducer visits sibling semijoins).
    """

    root: Optional[Edge]
    child_order: Mapping[Edge, Tuple[Edge, ...]]
    vertex_estimates: Mapping[Edge, int]
    reduced_estimates: Mapping[Edge, int]
    estimated_intermediate_sizes: Tuple[int, ...]
    estimated_output_size: int

    @property
    def estimated_max_intermediate(self) -> int:
        """The predicted largest bottom-up intermediate (0 with no joins)."""
        return max(self.estimated_intermediate_sizes, default=0)

    def order_children(self, vertex: Edge,
                       children: Sequence[Edge]) -> Tuple[Edge, ...]:
        """``children`` re-ordered into the annotation's fold order.

        Children the annotation never saw (defensive case) keep their
        relative traversal order, after the annotated ones.
        """
        preferred = self.child_order.get(vertex)
        if not preferred:
            return tuple(children)
        rank = {child: position for position, child in enumerate(preferred)}
        fallback = len(rank)
        return tuple(sorted(children, key=lambda child: (rank.get(child, fallback),
                                                         _edge_key(child))))

    def describe(self) -> str:
        """A one-line summary of the annotation's headline predictions."""
        root = format_node_set(self.root) if self.root is not None else "default"
        return (f"CostAnnotation root={root} "
                f"est_max_intermediate={self.estimated_max_intermediate} "
                f"est_output={self.estimated_output_size}")


def _simulate_rooting(rooted: RootedJoinTree,
                      reduced: Mapping[Edge, JoinEstimate],
                      wanted: Optional[FrozenSet[Attribute]]
                      ) -> Tuple[Dict[Edge, Tuple[Edge, ...]], Tuple[int, ...], int]:
    """Simulate the bottom-up join for one rooting with greedy child ordering.

    Mirrors the fused-projection keeps of
    :func:`repro.engine.yannakakis.evaluate`: while a vertex still has
    unfolded children, their separators stay live; afterwards the partial is
    projected onto (wanted ∩ subtree) ∪ parent separator.  At every vertex
    the next child folded is the one whose fold is predicted smallest.
    """
    partial: Dict[Edge, JoinEstimate] = {}
    order_map: Dict[Edge, Tuple[Edge, ...]] = {}
    sizes: List[int] = []
    for vertex, parent in rooted.leaf_to_root():
        current = reduced[vertex]
        children = list(rooted.children_of(vertex))
        final_keep: Optional[FrozenSet[Attribute]] = None
        if wanted is not None:
            subtree_attributes = set(vertex)
            for child in children:
                subtree_attributes.update(partial[child].attributes)
            final_keep = frozenset(subtree_attributes) & wanted
            if parent is not None:
                final_keep |= frozenset(vertex) & frozenset(parent)
        chosen: List[Edge] = []
        remaining = list(children)
        while remaining:
            best: Optional[Tuple[Tuple, Edge, JoinEstimate]] = None
            for child in remaining:
                joined = current.join(partial[child])
                if final_keep is not None:
                    keep = set(final_keep)
                    for other in remaining:
                        if other is not child:
                            keep |= frozenset(vertex) & frozenset(other)
                    joined = joined.project(keep)
                key = (joined.cardinality, _edge_key(child))
                if best is None or key < best[0]:
                    best = (key, child, joined)
            assert best is not None
            _, child, current = best
            remaining.remove(child)
            chosen.append(child)
            sizes.append(current.rows)
        if final_keep is not None and final_keep != current.attributes:
            current = current.project(final_keep)
        partial[vertex] = current
        if chosen:
            order_map[vertex] = tuple(chosen)
    roots = rooted.roots
    if not roots:
        return order_map, tuple(sizes), 0
    result = partial[roots[0]]
    for other_root in roots[1:]:
        result = result.join(partial[other_root])
        if wanted is not None:
            result = result.project((result.attributes
                                     | partial[other_root].attributes) & wanted)
        sizes.append(result.rows)
    return order_map, tuple(sizes), result.rows


def annotate_tree(tree: JoinTree, catalog: StatisticsCatalog, *,
                  output_attributes: Optional[Iterable[Attribute]] = None,
                  candidate_roots: Optional[Sequence[Optional[Edge]]] = None,
                  max_root_candidates: int = _MAX_ROOT_CANDIDATES) -> CostAnnotation:
    """Compile the cost annotation for a join tree against a catalog.

    Every candidate rooting (all vertices by default, capped at
    ``max_root_candidates``, plus the default rooting) is simulated with
    :func:`_simulate_rooting`; the rooting with the smallest predicted
    largest intermediate wins, ties broken towards the default rooting so an
    annotation never forces a new plan compilation without a predicted
    payoff.  ``candidate_roots`` pins the simulation to explicit rootings
    (used when the caller has already fixed a root).
    """
    wanted: Optional[FrozenSet[Attribute]] = (
        frozenset(output_attributes) if output_attributes is not None else None)
    base: Dict[Edge, JoinEstimate] = {
        vertex: catalog.estimate_for(vertex) for vertex in tree.vertices}
    reduced: Dict[Edge, JoinEstimate] = {}
    for vertex in tree.vertices:
        estimate = base[vertex]
        factor = 1.0
        for neighbour in tree.neighbours(vertex):
            factor *= estimate.semijoin_selectivity(base[neighbour])
        reduced[vertex] = estimate.scaled(factor)

    if candidate_roots is not None:
        candidates: List[Optional[Edge]] = list(candidate_roots)
    elif len(tree.vertices) <= max_root_candidates:
        candidates = [None] + sorted(tree.vertices, key=_edge_key)
    else:
        candidates = [None]

    best: Optional[Tuple[Tuple, Optional[Edge],
                         Dict[Edge, Tuple[Edge, ...]], Tuple[int, ...], int]] = None
    for root in candidates:
        rooted = tree.rooted(root)
        order_map, sizes, output_estimate = _simulate_rooting(rooted, reduced, wanted)
        key = (max(sizes, default=0), sum(sizes),
               0 if root is None else 1,
               _edge_key(root) if root is not None else ())
        if best is None or key < best[0]:
            best = (key, root, order_map, sizes, output_estimate)
    assert best is not None
    _, root, order_map, sizes, output_estimate = best
    return CostAnnotation(
        root=root,
        child_order=order_map,
        vertex_estimates={vertex: base[vertex].rows for vertex in tree.vertices},
        reduced_estimates={vertex: reduced[vertex].rows for vertex in tree.vertices},
        estimated_intermediate_sizes=sizes,
        estimated_output_size=output_estimate,
    )
