"""Counters, gauges and histograms with a Prometheus text exposition.

The registry is the future service front-end's metrics surface: each
:class:`~repro.engine.session.EngineSession` owns one, parented to the
process-wide :func:`global_registry`, so per-session counters and histogram
observations roll up into process totals automatically (gauges stay local —
a point-in-time value has no meaningful sum across sessions).

Everything is plain stdlib: families are created on first use
(``registry.counter("engine_queries_total", labels={"kind": "acyclic"})``),
label sets address independent series within a family, and two read-outs
exist — :meth:`MetricsRegistry.snapshot` (a flat dict for tests and JSON
payloads) and :meth:`MetricsRegistry.render_prometheus` (the ``# HELP`` /
``# TYPE`` text format with cumulative histogram buckets).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from time import perf_counter
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "global_registry",
    "GLOBAL_REGISTRY",
]

#: Fixed latency buckets (seconds) for the per-phase/per-query histograms:
#: 100µs to 5s, roughly logarithmic — the engine's in-process range.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0)

LabelValues = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Mapping[str, object]]) -> LabelValues:
    """Canonical hashable form of a label mapping (values coerced to str)."""
    if not labels:
        return ()
    return tuple(sorted((str(key), str(value)) for key, value in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text-format spec.

    Backslash must go first (escaping an escape would otherwise double up),
    then the double quote that delimits the value, then the newline that
    delimits the line.
    """
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    """Escape a ``# HELP`` string (backslash and newline only, per the spec)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_labels(labels: LabelValues) -> str:
    """The ``{k="v",…}`` suffix of an exposition line ("" when unlabelled)."""
    if not labels:
        return ""
    escaped = [f'{key}="{_escape_label_value(value)}"' for key, value in labels]
    return "{" + ",".join(escaped) + "}"


def _format_bound(bound: float) -> str:
    """A bucket bound rendered without trailing float noise (``0.001``, not ``0.0010``)."""
    return f"{bound:g}"


class Counter:
    """A monotonically increasing count; increments chain to the parent series."""

    __slots__ = ("_lock", "_value", "_parent")

    def __init__(self, parent: Optional["Counter"] = None) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._parent = parent

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to this series and its parent."""
        if amount < 0:
            raise ValueError("counters only go up; use a gauge for decrements")
        with self._lock:
            self._value += amount
        if self._parent is not None:
            self._parent.inc(amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value (cache sizes, hit ratios); not parent-chained."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Decrease the gauge (in-flight counts, freed capacity)."""
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class _HistogramTimer:
    """``with histogram.time():`` — observe the block's wall-time on exit.

    The elapsed seconds are observed even when the body raises (the failure
    path's latency is still latency); the exception propagates.  The last
    measurement is kept on :attr:`elapsed_seconds` for callers that want the
    number as well as the observation.
    """

    __slots__ = ("_histogram", "_started", "elapsed_seconds")

    def __init__(self, histogram: "Histogram") -> None:
        self._histogram = histogram
        self._started = 0.0
        self.elapsed_seconds: Optional[float] = None

    def __enter__(self) -> "_HistogramTimer":
        self._started = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.elapsed_seconds = perf_counter() - self._started
        self._histogram.observe(self.elapsed_seconds)
        return False


class Histogram:
    """Fixed-bucket distribution; observations chain to the parent series."""

    __slots__ = ("_lock", "_buckets", "_counts", "_sum", "_count", "_parent")

    def __init__(self, buckets: Sequence[float],
                 parent: Optional["Histogram"] = None) -> None:
        self._lock = threading.Lock()
        self._buckets = tuple(sorted(buckets))
        self._counts = [0] * (len(self._buckets) + 1)  # last slot is +Inf
        self._sum = 0.0
        self._count = 0
        self._parent = parent

    def time(self) -> _HistogramTimer:
        """A context manager observing the ``with`` block's wall-time."""
        return _HistogramTimer(self)

    def observe(self, value: float) -> None:
        """Record one observation in this series and its parent."""
        index = bisect_left(self._buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
        if self._parent is not None:
            self._parent.observe(value)

    @property
    def buckets(self) -> Tuple[float, ...]:
        return self._buckets

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def cumulative_counts(self) -> Tuple[Tuple[str, int], ...]:
        """Prometheus-style cumulative ``(le, count)`` pairs, ``+Inf`` last."""
        with self._lock:
            counts = list(self._counts)
        out: List[Tuple[str, int]] = []
        running = 0
        for bound, count in zip(self._buckets, counts):
            running += count
            out.append((_format_bound(bound), running))
        out.append(("+Inf", running + counts[-1]))
        return tuple(out)


class _Family:
    """One metric family: a kind, a help string and its labelled series."""

    __slots__ = ("kind", "help", "buckets", "series")

    def __init__(self, kind: str, help: str,
                 buckets: Optional[Tuple[float, ...]] = None) -> None:
        self.kind = kind
        self.help = help
        self.buckets = buckets
        self.series: "Dict[LabelValues, object]" = {}


class MetricsRegistry:
    """Get-or-create metric families keyed by name, with parent roll-up.

    ``parent`` chains counters and histograms: any increment/observation on
    a child series is replayed on the same-named series of the parent
    registry — a per-session registry parented to :func:`global_registry`
    yields process totals for free.  A name keeps the kind it was first
    created with; re-requesting it as a different kind raises ``ValueError``.
    """

    def __init__(self, parent: Optional["MetricsRegistry"] = None) -> None:
        self._parent = parent
        self._lock = threading.Lock()
        self._families: "Dict[str, _Family]" = {}

    def _family(self, name: str, kind: str, help: str,
                buckets: Optional[Tuple[float, ...]] = None) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(kind, help, buckets)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(f"metric {name!r} already registered as a "
                                 f"{family.kind}, not a {kind}")
            return family

    def counter(self, name: str, help: str = "",
                labels: Optional[Mapping[str, object]] = None) -> Counter:
        """The counter series for ``(name, labels)``, created on first use."""
        family = self._family(name, "counter", help)
        key = _label_key(labels)
        with self._lock:
            series = family.series.get(key)
            if series is None:
                parent = None if self._parent is None \
                    else self._parent.counter(name, help, labels)
                series = family.series[key] = Counter(parent)
        return series  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "",
              labels: Optional[Mapping[str, object]] = None) -> Gauge:
        """The gauge series for ``(name, labels)``, created on first use."""
        family = self._family(name, "gauge", help)
        key = _label_key(labels)
        with self._lock:
            series = family.series.get(key)
            if series is None:
                series = family.series[key] = Gauge()
        return series  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "",
                  labels: Optional[Mapping[str, object]] = None,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        """The histogram series for ``(name, labels)``; buckets fix on first use."""
        chosen = tuple(buckets) if buckets is not None else DEFAULT_LATENCY_BUCKETS
        family = self._family(name, "histogram", help, chosen)
        key = _label_key(labels)
        with self._lock:
            series = family.series.get(key)
            if series is None:
                parent = None if self._parent is None \
                    else self._parent.histogram(name, help, labels,
                                                family.buckets)
                series = family.series[key] = Histogram(family.buckets, parent)
        return series  # type: ignore[return-value]

    def snapshot(self) -> Dict[str, object]:
        """A flat dict of every series: scalars for counters/gauges, dicts for histograms.

        Keys are ``name`` or ``name{k=v,…}``; histogram values carry
        ``count``/``sum`` plus cumulative ``buckets``.
        """
        with self._lock:
            families = [(name, family, dict(family.series))
                        for name, family in sorted(self._families.items())]
        out: Dict[str, object] = {}
        for name, family, series_map in families:
            for key, series in sorted(series_map.items()):
                label_text = ",".join(f"{k}={v}" for k, v in key)
                full = f"{name}{{{label_text}}}" if label_text else name
                if family.kind == "histogram":
                    out[full] = {
                        "count": series.count,
                        "sum": series.sum,
                        "buckets": dict(series.cumulative_counts()),
                    }
                else:
                    out[full] = series.value
        return out

    def render_prometheus(self) -> str:
        """The Prometheus text exposition of every family, name-sorted."""
        with self._lock:
            families = [(name, family, dict(family.series))
                        for name, family in sorted(self._families.items())]
        lines: List[str] = []
        for name, family, series_map in families:
            if family.help:
                lines.append(f"# HELP {name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key, series in sorted(series_map.items()):
                suffix = _format_labels(key)
                if family.kind == "histogram":
                    for le, count in series.cumulative_counts():
                        bucket_labels = key + (("le", le),)
                        lines.append(f"{name}_bucket"
                                     f"{_format_labels(bucket_labels)} {count}")
                    lines.append(f"{name}_sum{suffix} {series.sum:g}")
                    lines.append(f"{name}_count{suffix} {series.count}")
                else:
                    lines.append(f"{name}{suffix} {series.value:g}")
        return "\n".join(lines) + ("\n" if lines else "")

    def clear(self) -> None:
        """Drop every family and series (tests; the parent is untouched)."""
        with self._lock:
            self._families.clear()


GLOBAL_REGISTRY = MetricsRegistry()
"""The process-wide registry; session registries are parented to it."""


def global_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return GLOBAL_REGISTRY
