"""``repro.telemetry`` — zero-dependency observability for the engine.

Three pillars, all stdlib-only and import-cycle-free (this package never
imports the engine; the engine's layers import *it*):

* :mod:`~repro.telemetry.tracing` — nested context-manager **spans**
  (``prepare``, ``annotate``, ``cover_search``, ``reduce``, ``fold``,
  ``kernel:semijoin`` / ``kernel:join`` / ``kernel:antijoin``, ``encode``,
  ``materialise``, ``decode``, ``execute``) carrying wall-time and
  cardinality attributes, a contextvar-ambient :func:`current_tracer`, a
  no-allocation null tracer for the disabled hot path, and pluggable sinks
  (:class:`JsonlTraceSink` streams JSONL);
* :mod:`~repro.telemetry.metrics` — counter/gauge/histogram families with
  labels, per-:class:`~repro.engine.session.EngineSession` registries that
  roll up into the process-wide :func:`global_registry`, a ``snapshot()``
  dict and a Prometheus text exposition;
* :mod:`~repro.telemetry.explain` — ``EXPLAIN ANALYZE``: estimated-vs-actual
  rows per vertex / join step / cluster, with the actuals sourced from the
  span attributes of a recorded run;
* :mod:`~repro.telemetry.schema` — validation of emitted JSONL traces
  against the checked-in ``trace_schema.json`` (required span names,
  monotonic timestamps, parent/child closure) and of ``/querylog`` payloads
  against ``querylog_schema.json`` — what the CI trace-smoke job runs;
* :mod:`~repro.telemetry.monitor` / :mod:`~repro.telemetry.qualitylog` /
  :mod:`~repro.telemetry.exposition` — the **operational monitoring**
  subsystem: a per-session query-log ring buffer with slow-query trace
  retention, rolling p50/p95/p99 latency and QPS history, per-fingerprint
  q-error tracking with drift flags, cache/resource gauges, and a stdlib
  HTTP endpoint serving ``/metrics`` / ``/health`` / ``/querylog`` /
  ``/quality`` (opt in with ``EngineSession(monitor=True)``).

Module-level imports here never touch the engine (the engine's layers
import *this* package); the monitor's cache collector and demo entry point
import engine internals lazily, inside the functions that need them.
"""

from .explain import ExplainAnalysis, ExplainEntry, build_explain_analysis
from .exposition import MonitoringServer, start_monitoring_server
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
)
from .monitor import (
    MonitorConfig,
    QueryHistory,
    QueryLog,
    QueryLogEntry,
    SessionMonitor,
    rolling_history,
)
from .qualitylog import PlanQualityTracker, QualityObservation, q_error
from .schema import (
    QUERYLOG_SCHEMA_PATH,
    TRACE_SCHEMA_PATH,
    QueryLogValidationError,
    TraceValidationError,
    load_querylog_schema,
    load_trace_schema,
    read_jsonl,
    validate_query_log,
    validate_trace_records,
)
from .tracing import (
    NULL_TRACER,
    JsonlTraceSink,
    ListTraceSink,
    NullTracer,
    Span,
    TraceSink,
    Tracer,
    current_tracer,
    merge_phase_times,
    span_totals,
    use_tracer,
)

__all__ = [
    # tracing
    "Tracer", "NullTracer", "NULL_TRACER", "Span",
    "current_tracer", "use_tracer",
    "TraceSink", "ListTraceSink", "JsonlTraceSink",
    "span_totals", "merge_phase_times",
    # metrics
    "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "DEFAULT_LATENCY_BUCKETS", "global_registry",
    # explain analyze
    "ExplainAnalysis", "ExplainEntry", "build_explain_analysis",
    # trace schema
    "TRACE_SCHEMA_PATH", "TraceValidationError", "load_trace_schema",
    "read_jsonl", "validate_trace_records",
    # operational monitoring
    "MonitorConfig", "SessionMonitor", "QueryLog", "QueryLogEntry",
    "QueryHistory", "rolling_history",
    "PlanQualityTracker", "QualityObservation", "q_error",
    "MonitoringServer", "start_monitoring_server",
    "QUERYLOG_SCHEMA_PATH", "QueryLogValidationError",
    "load_querylog_schema", "validate_query_log",
]
