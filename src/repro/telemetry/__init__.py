"""``repro.telemetry`` — zero-dependency observability for the engine.

Three pillars, all stdlib-only and import-cycle-free (this package never
imports the engine; the engine's layers import *it*):

* :mod:`~repro.telemetry.tracing` — nested context-manager **spans**
  (``prepare``, ``annotate``, ``cover_search``, ``reduce``, ``fold``,
  ``kernel:semijoin`` / ``kernel:join`` / ``kernel:antijoin``, ``encode``,
  ``materialise``, ``decode``, ``execute``) carrying wall-time and
  cardinality attributes, a contextvar-ambient :func:`current_tracer`, a
  no-allocation null tracer for the disabled hot path, and pluggable sinks
  (:class:`JsonlTraceSink` streams JSONL);
* :mod:`~repro.telemetry.metrics` — counter/gauge/histogram families with
  labels, per-:class:`~repro.engine.session.EngineSession` registries that
  roll up into the process-wide :func:`global_registry`, a ``snapshot()``
  dict and a Prometheus text exposition;
* :mod:`~repro.telemetry.explain` — ``EXPLAIN ANALYZE``: estimated-vs-actual
  rows per vertex / join step / cluster, with the actuals sourced from the
  span attributes of a recorded run;
* :mod:`~repro.telemetry.schema` — validation of emitted JSONL traces
  against the checked-in ``trace_schema.json`` (required span names,
  monotonic timestamps, parent/child closure) — what the CI trace-smoke job
  runs.
"""

from .explain import ExplainAnalysis, ExplainEntry, build_explain_analysis
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
)
from .schema import (
    TRACE_SCHEMA_PATH,
    TraceValidationError,
    load_trace_schema,
    read_jsonl,
    validate_trace_records,
)
from .tracing import (
    NULL_TRACER,
    JsonlTraceSink,
    ListTraceSink,
    NullTracer,
    Span,
    TraceSink,
    Tracer,
    current_tracer,
    merge_phase_times,
    span_totals,
    use_tracer,
)

__all__ = [
    # tracing
    "Tracer", "NullTracer", "NULL_TRACER", "Span",
    "current_tracer", "use_tracer",
    "TraceSink", "ListTraceSink", "JsonlTraceSink",
    "span_totals", "merge_phase_times",
    # metrics
    "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "DEFAULT_LATENCY_BUCKETS", "global_registry",
    # explain analyze
    "ExplainAnalysis", "ExplainEntry", "build_explain_analysis",
    # trace schema
    "TRACE_SCHEMA_PATH", "TraceValidationError", "load_trace_schema",
    "read_jsonl", "validate_trace_records",
]
