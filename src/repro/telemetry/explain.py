"""EXPLAIN ANALYZE: estimated-vs-actual plan accounting built from a trace.

``PreparedQuery.explain(analyze=True)`` executes the query under a fresh
recording :class:`~repro.telemetry.tracing.Tracer` and hands the records —
plus the run's statistics and the annotation's estimates — to
:func:`build_explain_analysis`.  The *actual* numbers here are deliberately
sourced from span attributes, not copied out of ``EngineStatistics``: the
reduce span's per-vertex sizes, the materialise/fold spans' intermediates
and the decode span's output count.  The property suite asserts they match
``EngineStatistics`` exactly, which makes the trace a genuine independent
witness of the engine's accounting (and the estimated column the feedback
signal re-optimisation needs).

This module is duck-typed on purpose — it never imports the engine, so the
telemetry package stays dependency-free and import-cycle-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["ExplainEntry", "ExplainAnalysis", "build_explain_analysis"]


@dataclass(frozen=True)
class ExplainEntry:
    """One plan element's estimated-vs-actual cardinality (``None`` = unknown)."""

    label: str
    estimated: Optional[float]
    actual: Optional[int]

    def render(self) -> str:
        est = "-" if self.estimated is None else f"{self.estimated:g}"
        actual = "-" if self.actual is None else str(self.actual)
        return f"{self.label}  est={est}  actual={actual}"


def _last_span(records: Sequence[Mapping[str, object]],
               name: str) -> Optional[Mapping[str, object]]:
    """The last record with ``name`` (one engine run emits each phase once)."""
    for record in reversed(records):
        if record.get("name") == name:
            return record
    return None


def _span_attr(records: Sequence[Mapping[str, object]], name: str,
               attribute: str) -> object:
    record = _last_span(records, name)
    if record is None:
        return None
    return record.get("attributes", {}).get(attribute)  # type: ignore[union-attr]


def _paired(labels: Sequence[str], estimates: Sequence[Optional[float]],
            actuals: Sequence[Optional[int]]) -> Tuple[ExplainEntry, ...]:
    """Zip label/estimate/actual columns defensively (shorter columns pad)."""
    length = max(len(labels), len(estimates), len(actuals))
    entries: List[ExplainEntry] = []
    for index in range(length):
        label = labels[index] if index < len(labels) else f"#{index}"
        estimated = estimates[index] if index < len(estimates) else None
        actual = actuals[index] if index < len(actuals) else None
        entries.append(ExplainEntry(label=label, estimated=estimated,
                                    actual=actual))
    return tuple(entries)


@dataclass(frozen=True)
class ExplainAnalysis:
    """The annotated plan tree of one executed query, ready to render.

    ``vertices`` are the join-tree vertices with their reduced sizes,
    ``steps`` the intermediate-producing join steps (cluster materialisation
    first on the cyclic path, then the bottom-up fold), ``clusters`` the
    cyclic plan's materialised cluster relations (empty for acyclic runs).
    """

    name: str
    kind: str
    mode: str
    adaptive: bool
    phase_seconds: Tuple[Tuple[str, float], ...]
    vertices: Tuple[ExplainEntry, ...]
    steps: Tuple[ExplainEntry, ...]
    clusters: Tuple[ExplainEntry, ...]
    output: ExplainEntry
    statistics: object
    records: Tuple[Mapping[str, object], ...]
    plan_description: str = ""

    @property
    def actual_vertex_sizes(self) -> Tuple[Optional[int], ...]:
        """The trace-sourced per-vertex reduced sizes, in rooted order."""
        return tuple(entry.actual for entry in self.vertices)

    @property
    def actual_step_sizes(self) -> Tuple[Optional[int], ...]:
        """The trace-sourced intermediate sizes, in execution order."""
        return tuple(entry.actual for entry in self.steps)

    @property
    def actual_cluster_sizes(self) -> Tuple[Optional[int], ...]:
        """The trace-sourced materialised cluster sizes (cyclic runs)."""
        return tuple(entry.actual for entry in self.clusters)

    def render(self) -> str:
        """The multi-line EXPLAIN ANALYZE report."""
        adaptive = "adaptive" if self.adaptive else "static"
        lines = [f"EXPLAIN ANALYZE {self.name!r} "
                 f"({self.kind} dispatch, {self.mode} mode, {adaptive})"]
        if self.phase_seconds:
            rendered = " | ".join(f"{phase} {seconds * 1000.0:.3f}ms"
                                  for phase, seconds in self.phase_seconds)
            lines.append(f"  phases: {rendered}")
        if self.clusters:
            lines.append("  clusters (materialised rows):")
            lines.extend(f"    {entry.render()}" for entry in self.clusters)
        if self.vertices:
            lines.append("  vertices (reduced rows):")
            lines.extend(f"    {entry.render()}" for entry in self.vertices)
        if self.steps:
            lines.append("  join steps (intermediate rows):")
            lines.extend(f"    {entry.render()}" for entry in self.steps)
        lines.append(f"  output: {self.output.render()}")
        if self.plan_description:
            lines.append("  plan:")
            lines.extend(f"    {line}"
                         for line in self.plan_description.splitlines())
        return "\n".join(lines)


def build_explain_analysis(*, name: str, kind: str, statistics: object,
                           records: Sequence[Mapping[str, object]],
                           vertex_estimates: Optional[Mapping[str, float]] = None,
                           plan_description: str = "") -> ExplainAnalysis:
    """Assemble an :class:`ExplainAnalysis` from one traced execution.

    ``statistics`` is the run's (duck-typed) ``EngineStatistics`` — it
    supplies the *estimates*; every *actual* comes out of ``records``:

    * per-vertex reduced sizes — the ``reduce`` span's ``vertices`` /
      ``sizes_after`` attributes;
    * intermediate sizes — the ``materialise`` span's ``intermediates``
      (cyclic runs) followed by the ``fold`` span's ``intermediates``;
    * cluster sizes — the ``materialise`` span's ``cluster_sizes``;
    * the output count — the ``decode`` span's ``output_rows``.

    ``vertex_estimates`` maps vertex labels (as the reduce span records
    them) to estimated reduced cardinalities; omitted labels render "-".
    """
    records = tuple(records)
    vertex_labels = [str(label) for label
                     in (_span_attr(records, "reduce", "vertices") or ())]
    vertex_actuals = [int(size) for size
                      in (_span_attr(records, "reduce", "sizes_after") or ())]
    estimates_by_label = dict(vertex_estimates or {})
    vertices = _paired(
        vertex_labels,
        [estimates_by_label.get(label) for label in vertex_labels],
        vertex_actuals)

    cluster_actuals = [int(size) for size
                       in (_span_attr(records, "materialise", "cluster_sizes")
                           or ())]
    cluster_estimates = list(getattr(statistics, "estimated_cluster_sizes",
                                     ()) or ())
    clusters = _paired(
        [f"cluster[{index}]" for index in range(
            max(len(cluster_actuals), len(cluster_estimates)))],
        cluster_estimates, cluster_actuals)

    step_actuals = ([int(size) for size
                     in (_span_attr(records, "materialise", "intermediates")
                         or ())]
                    + [int(size) for size
                       in (_span_attr(records, "fold", "intermediates") or ())])
    adaptive = bool(getattr(statistics, "adaptive", False))
    step_estimates = list(getattr(statistics, "estimated_intermediate_sizes",
                                  ()) or ()) if adaptive else []
    steps = _paired(
        [f"step[{index}]" for index in range(
            max(len(step_actuals), len(step_estimates)))],
        step_estimates, step_actuals)

    output_actual = _span_attr(records, "decode", "output_rows")
    estimated_output = getattr(statistics, "estimated_output_size", None) \
        if adaptive else None
    output = ExplainEntry(
        label="output",
        estimated=None if estimated_output is None else float(estimated_output),
        actual=None if output_actual is None else int(output_actual))

    return ExplainAnalysis(
        name=name, kind=kind,
        mode=str(getattr(statistics, "execution_mode", "-")),
        adaptive=adaptive,
        phase_seconds=tuple(getattr(statistics, "phase_times", ()) or ()),
        vertices=vertices, steps=steps, clusters=clusters, output=output,
        statistics=statistics, records=records,
        plan_description=plan_description)
