"""Plan-quality accounting: per-fingerprint q-error histograms and drift flags.

The adaptive planner predicts cardinalities (``estimated_intermediate_sizes``,
``estimated_output_size``) and the engine measures them
(``intermediate_sizes``, ``output_size``); EXPLAIN ANALYZE already renders
the two side by side for *one* run.  This module folds the comparison over
*every* run: each execution contributes the **q-error** of its estimates —
the standard symmetric ratio ``max(est/actual, actual/est)`` (with +1
smoothing so empty relations stay finite; a perfect estimate scores 1.0) —
into a per-fingerprint :class:`QualityRecord` holding a power-of-two q-error
histogram, the running mean/max and a bounded window of recent values.

A fingerprint whose *recent* mean q-error exceeds the drift threshold is
flagged by :meth:`PlanQualityTracker.drifted_fingerprints` — the signal the
ROADMAP's estimate-feedback item needs: "this plan's cost model has stopped
describing the data it runs against; re-measure the catalog and re-annotate".

Like the rest of the telemetry package this module is duck-typed and never
imports the engine: any statistics object carrying the adaptive estimate
fields feeds it.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

__all__ = ["q_error", "QualityObservation", "QualityRecord",
           "PlanQualityTracker"]

#: Upper bounds of the q-error histogram buckets (the last bucket is +Inf).
#: Q-errors are >= 1 by construction, so the buckets are powers of two.
Q_ERROR_BUCKETS: Tuple[float, ...] = (1.5, 2.0, 4.0, 8.0, 16.0, 64.0)


def q_error(estimated: float, actual: float) -> float:
    """The symmetric estimation error ``max(est/actual, actual/est)``.

    Both sides are +1-smoothed so zero-row estimates and zero-row actuals
    stay finite and comparable (``q_error(0, 0) == 1.0`` — a perfect
    prediction of emptiness).  Negative inputs are clamped to zero.
    """
    est = max(float(estimated), 0.0) + 1.0
    act = max(float(actual), 0.0) + 1.0
    return max(est / act, act / est)


@dataclass(slots=True)
class QualityObservation:
    """One run's worth of estimate-vs-actual pairs, already reduced to q-errors.

    Treat instances as immutable (``slots`` without ``frozen`` keeps the
    per-run construction cost off the warm path, as with
    :class:`~repro.telemetry.monitor.QueryLogEntry`).
    """

    fingerprint: str
    query: str
    q_errors: Tuple[float, ...]

    @property
    def worst(self) -> float:
        return max(self.q_errors, default=1.0)


class QualityRecord:
    """The accumulated q-error distribution of one plan fingerprint."""

    __slots__ = ("fingerprint", "queries", "runs", "observations", "_sum",
                 "max_q", "last_q", "bucket_counts", "recent")

    def __init__(self, fingerprint: str, window: int) -> None:
        self.fingerprint = fingerprint
        self.queries: List[str] = []
        self.runs = 0
        self.observations = 0
        self._sum = 0.0
        self.max_q = 1.0
        self.last_q = 1.0
        self.bucket_counts = [0] * (len(Q_ERROR_BUCKETS) + 1)
        self.recent: Deque[float] = deque(maxlen=window)

    def fold(self, observation: QualityObservation) -> None:
        self.fold_values(observation.query, observation.q_errors)

    def fold_values(self, query: str, values: Sequence[float]) -> None:
        """Fold one run's q-errors directly (the allocation-free hot path)."""
        if query not in self.queries:
            self.queries.append(query)
        self.runs += 1
        self.observations += len(values)
        self._sum += sum(values)
        counts = self.bucket_counts
        worst = 1.0
        for value in values:
            # First bound >= value is the ``<= bound`` bucket; values past
            # the last bound land in the +Inf slot (index len(buckets)).
            counts[bisect_left(Q_ERROR_BUCKETS, value)] += 1
            if value > worst:
                worst = value
        if worst > self.max_q:
            self.max_q = worst
        self.last_q = worst
        self.recent.append(worst)

    @property
    def mean_q(self) -> float:
        """The mean q-error over every observation (1.0 when empty)."""
        return (self._sum / self.observations) if self.observations else 1.0

    @property
    def recent_mean_q(self) -> float:
        """The mean of the recent window's per-run worst q-errors."""
        return (sum(self.recent) / len(self.recent)) if self.recent else 1.0

    def histogram(self) -> Tuple[Tuple[str, int], ...]:
        """``(le, count)`` pairs over the q-error buckets, ``+Inf`` last."""
        labels = [f"{bound:g}" for bound in Q_ERROR_BUCKETS] + ["+Inf"]
        return tuple(zip(labels, self.bucket_counts))

    def to_dict(self) -> Dict[str, object]:
        return {
            "fingerprint": self.fingerprint,
            "queries": list(self.queries),
            "runs": self.runs,
            "observations": self.observations,
            "mean_q": self.mean_q,
            "recent_mean_q": self.recent_mean_q,
            "max_q": self.max_q,
            "last_q": self.last_q,
            "histogram": {le: count for le, count in self.histogram()},
        }


class PlanQualityTracker:
    """Fold adaptive runs' estimated-vs-actual cardinalities per fingerprint.

    :meth:`observe` extracts the estimate/actual pairs from a (duck-typed)
    statistics object — per-step ``estimated_intermediate_sizes`` against
    ``intermediate_sizes`` and ``estimated_output_size`` against
    ``output_size`` — and folds their q-errors into the fingerprint's
    :class:`QualityRecord`.  Non-adaptive runs carry no estimates and are
    ignored.  A fingerprint drifts when its recent mean q-error exceeds
    ``drift_threshold`` over at least ``drift_min_runs`` recent runs.
    """

    def __init__(self, *, drift_threshold: float = 2.0,
                 drift_min_runs: int = 3, window: int = 32) -> None:
        if drift_threshold < 1.0:
            raise ValueError("q-errors are >= 1, so a drift threshold below "
                             "1.0 would flag every plan")
        self.drift_threshold = drift_threshold
        self.drift_min_runs = max(1, drift_min_runs)
        self.window = max(1, window)
        self._lock = threading.Lock()
        self._records: Dict[str, QualityRecord] = {}

    @staticmethod
    def _q_errors_from(statistics: object) -> Optional[List[float]]:
        """One run's q-errors as a plain list (``None`` when static/empty)."""
        if not getattr(statistics, "adaptive", False):
            return None
        estimates = getattr(statistics, "estimated_intermediate_sizes",
                            None) or ()
        actuals = getattr(statistics, "intermediate_sizes", None) or ()
        values: List[float] = []
        append = values.append
        for estimated, actual in zip(estimates, actuals):
            # q_error() inlined — this runs once per join step per query
            # on the warm path, and the call overhead is measurable there.
            est = float(estimated) + 1.0 if estimated > 0 else 1.0
            act = float(actual) + 1.0 if actual > 0 else 1.0
            append(est / act if est >= act else act / est)
        estimated_output = getattr(statistics, "estimated_output_size", None)
        if estimated_output is not None:
            append(q_error(estimated_output,
                           getattr(statistics, "output_size", 0) or 0))
        if not values:
            return None
        return values

    @staticmethod
    def observation_from(fingerprint: str, query: str, statistics: object
                         ) -> Optional[QualityObservation]:
        """Reduce one statistics object to q-errors (``None`` when static)."""
        values = PlanQualityTracker._q_errors_from(statistics)
        if values is None:
            return None
        return QualityObservation(fingerprint=fingerprint, query=query,
                                  q_errors=tuple(values))

    def observe(self, *, fingerprint: str, query: str,
                statistics: object) -> Optional[QualityObservation]:
        """Fold one run; returns the observation (``None`` for static runs)."""
        observation = self.observation_from(fingerprint, query, statistics)
        if observation is None:
            return None
        with self._lock:
            record = self._records.get(fingerprint)
            if record is None:
                record = self._records[fingerprint] = \
                    QualityRecord(fingerprint, self.window)
            record.fold(observation)
        return observation

    def fold_run(self, *, fingerprint: str, query: str,
                 statistics: object) -> None:
        """:meth:`observe` minus the observation object — the warm path."""
        values = self._q_errors_from(statistics)
        if values is None:
            return
        with self._lock:
            record = self._records.get(fingerprint)
            if record is None:
                record = self._records[fingerprint] = \
                    QualityRecord(fingerprint, self.window)
            record.fold_values(query, values)

    def record(self, fingerprint: str) -> Optional[QualityRecord]:
        """The accumulated record of one fingerprint (``None`` when unseen)."""
        with self._lock:
            return self._records.get(fingerprint)

    def records(self) -> Tuple[QualityRecord, ...]:
        """Every fingerprint's record, fingerprint-sorted."""
        with self._lock:
            return tuple(self._records[key] for key in sorted(self._records))

    def is_drifted(self, record: QualityRecord) -> bool:
        """The drift predicate (recent mean above threshold, enough runs)."""
        return (len(record.recent) >= self.drift_min_runs
                and record.recent_mean_q > self.drift_threshold)

    def drifted_fingerprints(self) -> Tuple[str, ...]:
        """Fingerprints whose recent estimates have drifted, sorted."""
        return tuple(record.fingerprint for record in self.records()
                     if self.is_drifted(record))

    def to_dict(self) -> Dict[str, object]:
        """The ``/quality`` JSON document."""
        records = self.records()
        return {
            "drift_threshold": self.drift_threshold,
            "drift_min_runs": self.drift_min_runs,
            "fingerprints": [dict(record.to_dict(),
                                  drifted=self.is_drifted(record))
                             for record in records],
            "drifted": list(self.drifted_fingerprints()),
        }

    def clear(self) -> None:
        """Drop every record (tests)."""
        with self._lock:
            self._records.clear()
