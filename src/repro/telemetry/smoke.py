"""The CI trace-smoke entry point: trace two queries, validate the JSONL.

``python -m repro.telemetry.smoke`` runs one acyclic and one cyclic query
end to end with JSONL tracing enabled, reads the emitted files back, and
validates them against the checked-in ``trace_schema.json`` contract —
required span names, monotonic completion timestamps, parent/child closure.
It exits non-zero on any violation, so the CI job fails the moment an engine
change stops emitting a promised span or breaks trace well-formedness.

The cyclic query uses a triangle core with chain ears on purpose: a pure
triangle collapses to a single-cluster quotient whose reducer runs zero
semijoins, which would make the required ``kernel:semijoin`` span vacuously
absent.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile

from ..engine.session import EngineSession
from ..generators import (
    generate_database,
    skewed_chain_database,
    triangle_core_chain,
)
from ..relational.schema import DatabaseSchema, RelationSchema
from .schema import TraceValidationError, read_jsonl, validate_trace_records
from .tracing import JsonlTraceSink, Tracer, use_tracer

__all__ = ["run_smoke", "main"]


def _trace_one(session: EngineSession, database, path: str) -> dict:
    """Prepare and execute ``database``'s universal join under a JSONL tracer."""
    tracer = Tracer()
    with JsonlTraceSink(path) as sink:
        tracer.add_sink(sink)
        with use_tracer(tracer):
            prepared = session.prepare(database)
            result = prepared.execute(database)
    return {"kind": prepared.kind,
            "output_rows": result.statistics.output_size,
            "phase_times": list(result.statistics.phase_times)}


def run_smoke(directory: str) -> dict:
    """Run the acyclic + cyclic traced queries; validate both JSONL files.

    Returns a summary dict (printed by :func:`main` as JSON); raises
    :class:`~repro.telemetry.schema.TraceValidationError` when either trace
    violates the schema.
    """
    session = EngineSession()

    acyclic_db = skewed_chain_database(3)
    acyclic_path = os.path.join(directory, "trace_acyclic.jsonl")
    acyclic_run = _trace_one(session, acyclic_db, acyclic_path)
    if acyclic_run["kind"] != "acyclic":
        raise TraceValidationError("the chain database dispatched cyclically")
    acyclic_summary = validate_trace_records(read_jsonl(acyclic_path))

    hypergraph = triangle_core_chain(3)
    schema = DatabaseSchema(
        RelationSchema.of(f"R{index}", sorted(edge, key=str))
        for index, edge in enumerate(hypergraph.edges))
    cyclic_db = generate_database(schema, universe_rows=40, seed=3)
    cyclic_path = os.path.join(directory, "trace_cyclic.jsonl")
    cyclic_run = _trace_one(session, cyclic_db, cyclic_path)
    if cyclic_run["kind"] != "cyclic":
        raise TraceValidationError("the triangle-core database dispatched "
                                   "acyclically")
    cyclic_summary = validate_trace_records(read_jsonl(cyclic_path),
                                            cyclic=True)

    return {
        "acyclic": {"run": acyclic_run, "trace": acyclic_summary},
        "cyclic": {"run": cyclic_run, "trace": cyclic_summary},
        "metrics": session.metrics.snapshot(),
    }


def main(argv=None) -> int:
    """CLI entry point; prints the summary JSON and returns the exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    directory = argv[0] if argv else None
    try:
        if directory is None:
            with tempfile.TemporaryDirectory(prefix="repro-trace-") as tmp:
                summary = run_smoke(tmp)
        else:
            os.makedirs(directory, exist_ok=True)
            summary = run_smoke(directory)
    except TraceValidationError as error:
        print(f"trace smoke FAILED: {error}", file=sys.stderr)
        return 1
    print(json.dumps(summary, indent=2, default=str))
    print("trace smoke OK", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
