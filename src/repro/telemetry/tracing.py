"""Span tracing: nested context-manager spans, null-tracer hot path, JSONL sinks.

The engine's layers (planner → reducer/fold → kernels → session) are
instrumented with *spans* — named, nested wall-time intervals carrying a few
attributes (cardinalities, execution mode, cache hits).  Instrumentation
sites read the ambient tracer from a :mod:`contextvars` variable
(:func:`current_tracer`), so tracing composes with threads and needs no
plumbing through a dozen call signatures:

* **disabled** (the default): :data:`NULL_TRACER` hands out one shared
  no-op span object — no dict, no list, no timestamps, nothing allocated on
  the hot path;
* **enabled**: ``with use_tracer(Tracer()) as tracer: …`` records every
  span as a plain dict (``span_id``/``parent_id``/``name``/``ts``/``start``/
  ``end``/``duration``/``attributes``) and forwards it to any registered
  :class:`TraceSink` (e.g. :class:`JsonlTraceSink`).

Attributes are only attached via ``span.set(key, value)`` guarded by
``span.is_recording``, so disabled runs never even build the values.
Parent/child relationships come from a per-thread span stack owned by the
tracer: spans opened on different threads under one tracer are separate
roots, never cross-parented.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "use_tracer",
    "current_span_tags",
    "use_span_tags",
    "TraceSink",
    "ListTraceSink",
    "JsonlTraceSink",
    "span_totals",
    "merge_phase_times",
]

#: One trace record: the dict a finished span turns into.
TraceRecord = Dict[str, object]


class _NullSpan:
    """The shared no-op span — enter, exit and ``set`` all do nothing."""

    __slots__ = ()
    is_recording = False

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value: object) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every ``span`` call returns the one null span."""

    __slots__ = ()
    enabled = False
    records: Tuple[TraceRecord, ...] = ()

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN


NULL_TRACER = NullTracer()
"""The module-level null tracer — the ambient default when nothing traces."""

_ACTIVE_TRACER: "ContextVar[object]" = ContextVar("repro_active_tracer",
                                                  default=NULL_TRACER)


def current_tracer():
    """The ambient tracer instrumentation sites record against."""
    return _ACTIVE_TRACER.get()


@contextmanager
def use_tracer(tracer) -> Iterator[object]:
    """Activate ``tracer`` for the dynamic extent of the ``with`` block.

    ``None`` activates the null tracer (an explicit "trace nothing here").
    The previous tracer is restored on exit, so activations nest.
    """
    token = _ACTIVE_TRACER.set(tracer if tracer is not None else NULL_TRACER)
    try:
        yield _ACTIVE_TRACER.get()
    finally:
        _ACTIVE_TRACER.reset(token)


#: Ambient attributes stamped onto recording root spans: the query service
#: installs ``(client, request_id)`` here so every span a request produces is
#: attributable without threading ids through the engine's signatures.
_SPAN_TAGS: "ContextVar[Tuple[Tuple[str, object], ...]]" = ContextVar(
    "repro_span_tags", default=())


def current_span_tags() -> Tuple[Tuple[str, object], ...]:
    """The ambient ``(key, value)`` tags for spans opened in this context."""
    return _SPAN_TAGS.get()


@contextmanager
def use_span_tags(**tags: object) -> Iterator[Tuple[Tuple[str, object], ...]]:
    """Merge ``tags`` into the ambient span tags for the ``with`` block.

    Tags accumulate across nested scopes (inner values win on key clashes)
    and propagate wherever contextvars do — including into pool threads run
    under ``contextvars.copy_context()``.  Instrumentation sites apply them
    with ``span.set`` guarded by ``is_recording``, so untraced runs pay one
    contextvar read and nothing else.
    """
    merged = dict(_SPAN_TAGS.get())
    merged.update(tags)
    token = _SPAN_TAGS.set(tuple(merged.items()))
    try:
        yield _SPAN_TAGS.get()
    finally:
        _SPAN_TAGS.reset(token)


class Span:
    """One recording span: a named wall-time interval with attributes.

    Entering pushes the span on the tracer's per-thread stack (the stack top
    becomes the parent); exiting pops it, stamps the end time and hands the
    finished record to the tracer.  An exception escaping the body is noted
    in the ``error`` attribute and re-raised — tracing never swallows.
    """

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "ts", "start",
                 "end", "attributes")
    is_recording = True

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = tracer._next_id()
        self.parent_id: Optional[int] = None
        self.ts = 0.0
        self.start = 0.0
        self.end = 0.0
        self.attributes: Dict[str, object] = {}

    def set(self, key: str, value: object) -> "Span":
        """Attach one attribute; chainable."""
        self.attributes[key] = value
        return self

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        if stack:
            self.parent_id = stack[-1].span_id
        stack.append(self)
        self.ts = time.time()
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = time.perf_counter()
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self._tracer._record(self)
        return False


class Tracer:
    """A recording tracer: in-memory records plus pluggable sinks.

    Records accumulate in :attr:`records` in span *completion* order (a
    parent finishes after its children, so ``end`` is monotonic across the
    list).  Sinks receive each record as it completes — a long-lived service
    can stream JSONL without ever holding the whole trace.
    """

    enabled = True

    def __init__(self, *, sinks: Sequence["TraceSink"] = ()) -> None:
        self.records: List[TraceRecord] = []
        self._sinks: List[TraceSink] = list(sinks)
        self._counter = itertools.count(1)
        self._lock = threading.Lock()
        self._local = threading.local()

    def span(self, name: str) -> Span:
        """A new span; record it by using it as a context manager."""
        return Span(self, name)

    def add_sink(self, sink: "TraceSink") -> "TraceSink":
        """Register a sink for future records; returns the sink."""
        with self._lock:
            self._sinks.append(sink)
        return sink

    def clear(self) -> None:
        """Drop the accumulated in-memory records (sinks are untouched)."""
        with self._lock:
            self.records.clear()

    def span_totals(self) -> Dict[str, float]:
        """Total recorded seconds per span name (see :func:`span_totals`)."""
        with self._lock:
            records = tuple(self.records)
        return span_totals(records)

    # -- internals used by Span ------------------------------------------- #
    def _next_id(self) -> int:
        return next(self._counter)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, span: Span) -> None:
        record: TraceRecord = {
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "name": span.name,
            "ts": span.ts,
            "start": span.start,
            "end": span.end,
            "duration": span.end - span.start,
            "attributes": dict(span.attributes),
        }
        with self._lock:
            self.records.append(record)
            sinks = tuple(self._sinks)
        for sink in sinks:
            sink.emit(record)


class TraceSink:
    """The sink interface: ``emit`` one finished record, ``close`` when done."""

    def emit(self, record: TraceRecord) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources; the default is a no-op."""


class ListTraceSink(TraceSink):
    """Collect records in a plain list (tests, ad-hoc inspection)."""

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []

    def emit(self, record: TraceRecord) -> None:
        self.records.append(record)


class JsonlTraceSink(TraceSink):
    """Write each record as one JSON line to a path or an open text stream.

    Opened paths are owned (and closed by :meth:`close` / the context
    manager); caller-supplied streams are written to but never closed.
    Attribute values outside the JSON types fall back to ``str``.
    """

    def __init__(self, target: Union[str, "object"]) -> None:
        if hasattr(target, "write"):
            self._handle = target
            self._owns_handle = False
        else:
            self._handle = open(target, "a", encoding="utf-8")
            self._owns_handle = True
        self._lock = threading.Lock()

    def emit(self, record: TraceRecord) -> None:
        line = json.dumps(record, default=str)
        with self._lock:
            self._handle.write(line + "\n")

    def close(self) -> None:
        with self._lock:
            if self._owns_handle:
                self._handle.close()
            else:
                self._handle.flush()

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def span_totals(records: Sequence[TraceRecord]) -> Dict[str, float]:
    """Total ``duration`` per span name over a record sequence.

    Note that nested spans both count — a ``reduce`` total includes the
    ``kernel:semijoin`` time spent inside it; compare like with like.
    """
    totals: Dict[str, float] = {}
    for record in records:
        name = str(record.get("name"))
        totals[name] = totals.get(name, 0.0) + float(record.get("duration", 0.0))
    return totals


def merge_phase_times(*sequences: Sequence[Tuple[str, float]]
                      ) -> Tuple[Tuple[str, float], ...]:
    """Sum ``(phase, seconds)`` sequences by phase name, first-seen order.

    Used to combine an outer run's phases with an inner run's (the cyclic
    executor embedding an acyclic evaluation) and to aggregate batches.
    """
    totals: "Dict[str, float]" = {}
    for sequence in sequences:
        for phase, seconds in sequence:
            totals[phase] = totals.get(phase, 0.0) + seconds
    return tuple(totals.items())
