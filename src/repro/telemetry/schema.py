"""Trace-record validation against the checked-in JSON schema.

The CI trace-smoke job runs one acyclic and one cyclic query with JSONL
tracing enabled and validates the emitted records here: every record has
the required fields with the right types, completion timestamps are
monotonic, the parent/child relation is closed (every parent exists, no
self-parenting, children complete inside their parent's interval), and the
span names the engine promises to emit all appear.  The schema itself lives
next to this module in ``trace_schema.json`` so external consumers can
validate the same contract without importing the package.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Mapping, Optional, Sequence

from ..exceptions import ReproError
from .tracing import TraceRecord

__all__ = [
    "TraceValidationError",
    "QueryLogValidationError",
    "TRACE_SCHEMA_PATH",
    "QUERYLOG_SCHEMA_PATH",
    "load_trace_schema",
    "load_querylog_schema",
    "read_jsonl",
    "validate_trace_records",
    "validate_query_log",
]

TRACE_SCHEMA_PATH = os.path.join(os.path.dirname(__file__), "trace_schema.json")
"""The checked-in schema the engine's trace records conform to."""

QUERYLOG_SCHEMA_PATH = os.path.join(os.path.dirname(__file__),
                                    "querylog_schema.json")
"""The checked-in schema the ``/querylog`` endpoint's JSON conforms to."""


class TraceValidationError(ReproError):
    """Raised when a trace record set violates the schema."""


class QueryLogValidationError(ReproError):
    """Raised when a ``/querylog`` payload violates the schema."""


def load_trace_schema(path: Optional[str] = None) -> Dict[str, object]:
    """Load a trace schema document (the checked-in one by default)."""
    with open(path or TRACE_SCHEMA_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


def load_querylog_schema(path: Optional[str] = None) -> Dict[str, object]:
    """Load a query-log schema document (the checked-in one by default)."""
    with open(path or QUERYLOG_SCHEMA_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


def read_jsonl(path: str) -> List[TraceRecord]:
    """Read a JSONL trace file back into a record list (blank lines skipped)."""
    records: List[TraceRecord] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise TraceValidationError(
                    f"line {line_number} is not valid JSON: {error}") from error
    return records


def validate_trace_records(records: Sequence[Mapping[str, object]],
                           schema: Optional[Mapping[str, object]] = None, *,
                           cyclic: bool = False) -> Dict[str, object]:
    """Validate records against the schema; return a summary dict.

    Checks, in order: per-record required fields and numeric types,
    ``start <= end`` with a consistent ``duration``, monotonic completion
    order, parent/child closure (parents exist, no self-parent, interval
    containment), and — over the whole set — that every required span name
    appears (plus the cyclic-only names when ``cyclic=True``).

    Raises :class:`TraceValidationError` on the first violation.  The
    summary carries ``records``, ``roots`` and the distinct ``span_names``.
    """
    if schema is None:
        schema = load_trace_schema()
    required_fields = [str(f) for f in schema.get("required_fields", ())]
    numeric_fields = set(str(f) for f in schema.get("numeric_fields", ()))
    monotonic_field = schema.get("monotonic_field")

    if not records:
        raise TraceValidationError("the trace is empty — nothing was recorded")

    by_id: Dict[int, Mapping[str, object]] = {}
    previous_mark: Optional[float] = None
    for index, record in enumerate(records):
        for field in required_fields:
            if field not in record:
                raise TraceValidationError(
                    f"record {index} is missing required field {field!r}")
        for field in numeric_fields:
            if not isinstance(record[field], (int, float)) \
                    or isinstance(record[field], bool):
                raise TraceValidationError(
                    f"record {index} field {field!r} is not numeric: "
                    f"{record[field]!r}")
        start, end = float(record["start"]), float(record["end"])
        if start > end:
            raise TraceValidationError(
                f"record {index} ({record['name']!r}) has start > end")
        if abs((end - start) - float(record["duration"])) > 1e-6:
            raise TraceValidationError(
                f"record {index} ({record['name']!r}) duration does not "
                "match end - start")
        if monotonic_field:
            mark = float(record[str(monotonic_field)])
            if previous_mark is not None and mark < previous_mark:
                raise TraceValidationError(
                    f"record {index} breaks {monotonic_field!r} monotonicity: "
                    f"{mark} after {previous_mark}")
            previous_mark = mark
        span_id = record["span_id"]
        if span_id in by_id:
            raise TraceValidationError(f"duplicate span_id {span_id!r}")
        by_id[span_id] = record  # type: ignore[index]

    roots = 0
    for record in records:
        parent_id = record.get("parent_id")
        if parent_id is None:
            roots += 1
            continue
        if parent_id == record["span_id"]:
            raise TraceValidationError(
                f"span {record['span_id']!r} ({record['name']!r}) is its own "
                "parent")
        parent = by_id.get(parent_id)  # type: ignore[arg-type]
        if parent is None:
            raise TraceValidationError(
                f"span {record['span_id']!r} ({record['name']!r}) references "
                f"unknown parent {parent_id!r}")
        # Records complete children-first, so a child's interval must sit
        # inside its parent's (tiny clock tolerance for equal endpoints).
        if float(record["start"]) < float(parent["start"]) - 1e-9 \
                or float(record["end"]) > float(parent["end"]) + 1e-9:
            raise TraceValidationError(
                f"span {record['span_id']!r} ({record['name']!r}) does not "
                f"nest inside parent {parent_id!r} ({parent['name']!r})")

    seen_names = {str(record["name"]) for record in records}
    required_names = [str(name) for name in schema.get("required_span_names", ())]
    if cyclic:
        required_names += [str(name) for name in schema.get("cyclic_span_names", ())]
    missing = [name for name in required_names if name not in seen_names]
    if missing:
        raise TraceValidationError(
            f"required span name(s) never appeared: {missing} "
            f"(saw {sorted(seen_names)})")

    return {"records": len(records), "roots": roots,
            "span_names": sorted(seen_names)}


def validate_query_log(payload: Mapping[str, object],
                       schema: Optional[Mapping[str, object]] = None
                       ) -> Dict[str, object]:
    """Validate a ``/querylog`` JSON document against the checked-in schema.

    Checks, in order: the top-level accounting fields, every entry's
    required fields with per-kind types (numeric / string / boolean, with
    ``error`` nullable-string and ``phase_times`` a list of
    ``[phase, seconds]`` pairs), strictly increasing ``seq``, known ``kind``
    values, and the rolling-history rows' fields.  Raises
    :class:`QueryLogValidationError` on the first violation; returns a
    summary dict (``entries`` / ``errors`` / ``slow`` / ``traced`` /
    ``queries``).
    """
    if schema is None:
        schema = load_querylog_schema()
    for field in schema.get("required_top_level", ()):
        if str(field) not in payload:
            raise QueryLogValidationError(
                f"the payload is missing top-level field {field!r}")
    entries = payload["entries"]
    if not isinstance(entries, list):
        raise QueryLogValidationError("'entries' must be a list")

    required = [str(f) for f in schema.get("entry_required_fields", ())]
    numeric = {str(f) for f in schema.get("entry_numeric_fields", ())}
    strings = {str(f) for f in schema.get("entry_string_fields", ())}
    booleans = {str(f) for f in schema.get("entry_boolean_fields", ())}
    monotonic = schema.get("monotonic_entry_field")
    kinds = {str(kind) for kind in schema.get("kinds", ())}

    previous_mark: Optional[float] = None
    for index, entry in enumerate(entries):
        if not isinstance(entry, Mapping):
            raise QueryLogValidationError(f"entry {index} is not an object")
        for field in required:
            if field not in entry:
                raise QueryLogValidationError(
                    f"entry {index} is missing required field {field!r}")
        for field in numeric:
            if not isinstance(entry[field], (int, float)) \
                    or isinstance(entry[field], bool):
                raise QueryLogValidationError(
                    f"entry {index} field {field!r} is not numeric: "
                    f"{entry[field]!r}")
        for field in strings:
            if not isinstance(entry[field], str):
                raise QueryLogValidationError(
                    f"entry {index} field {field!r} is not a string: "
                    f"{entry[field]!r}")
        for field in booleans:
            if not isinstance(entry[field], bool):
                raise QueryLogValidationError(
                    f"entry {index} field {field!r} is not boolean: "
                    f"{entry[field]!r}")
        if entry["error"] is not None and not isinstance(entry["error"], str):
            raise QueryLogValidationError(
                f"entry {index} field 'error' must be null or a string")
        phase_times = entry["phase_times"]
        if not isinstance(phase_times, list) or any(
                not isinstance(pair, (list, tuple)) or len(pair) != 2
                or not isinstance(pair[0], str)
                or not isinstance(pair[1], (int, float))
                for pair in phase_times):
            raise QueryLogValidationError(
                f"entry {index} field 'phase_times' must be a list of "
                "[phase, seconds] pairs")
        if kinds and str(entry["kind"]) not in kinds:
            raise QueryLogValidationError(
                f"entry {index} has unknown kind {entry['kind']!r} "
                f"(expected one of {sorted(kinds)})")
        if monotonic:
            mark = float(entry[str(monotonic)])
            if previous_mark is not None and mark <= previous_mark:
                raise QueryLogValidationError(
                    f"entry {index} breaks {monotonic!r} monotonicity: "
                    f"{mark} after {previous_mark}")
            previous_mark = mark

    history = payload.get("history", [])
    if not isinstance(history, list):
        raise QueryLogValidationError("'history' must be a list")
    history_fields = [str(f) for f in schema.get("history_required_fields", ())]
    for index, row in enumerate(history):
        if not isinstance(row, Mapping):
            raise QueryLogValidationError(f"history row {index} is not an object")
        for field in history_fields:
            if field not in row:
                raise QueryLogValidationError(
                    f"history row {index} is missing required field {field!r}")

    return {
        "entries": len(entries),
        "errors": sum(1 for entry in entries if entry["error"] is not None),
        "slow": sum(1 for entry in entries if entry["slow"]),
        "traced": sum(1 for entry in entries if entry["traced"]),
        "queries": sorted({str(entry["query"]) for entry in entries}),
    }
