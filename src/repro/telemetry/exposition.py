"""The repo's first network listener: ``/metrics`` over stdlib ``http.server``.

A :class:`MonitoringServer` wraps one
:class:`~repro.telemetry.monitor.SessionMonitor` in a daemon-threaded
:class:`~http.server.ThreadingHTTPServer` bound to localhost (port 0 picks a
free port) and serves four routes:

* ``GET /metrics`` — the Prometheus text exposition of the session's
  registry, with :meth:`SessionMonitor.collect` polled first so the cache
  and catalog gauges are fresh at scrape time;
* ``GET /health`` — a JSON liveness document (uptime, queries recorded,
  retained errors/slow runs, drifted fingerprints);
* ``GET /querylog`` — the query-log ring buffer plus the rolling history as
  JSON (``?limit=N`` keeps the newest N entries), the document
  ``querylog_schema.json`` describes;
* ``GET /quality`` — the per-fingerprint q-error accounting as JSON.

This is deliberately the *seam* the future multi-tenant query service grows
from — the handler knows nothing about the engine, only the monitor's three
payload methods — and deliberately minimal: no TLS, no auth, loopback by
default.  Anything else belongs to the service PR, not the telemetry layer.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlparse

__all__ = ["MonitoringServer", "start_monitoring_server"]

#: The content type Prometheus scrapers expect for the text format.
_METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _MonitorRequestHandler(BaseHTTPRequestHandler):
    """Route GETs to the owning server's monitor payloads."""

    # Set per bound server class (see MonitoringServer._make_handler).
    monitor = None
    server_version = "repro-monitor/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing ---------------------------------------------------------- #
    def log_message(self, format: str, *args: object) -> None:
        """Silence the default stderr access log (the monitor *is* the log)."""

    def _reply(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply_json(self, document: object, status: int = 200) -> None:
        body = json.dumps(document, default=str).encode("utf-8")
        self._reply(status, body, "application/json; charset=utf-8")

    # -- routes ------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - http.server's naming
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        monitor = self.monitor
        try:
            if route == "/metrics":
                monitor.collect()
                registry = monitor.registry
                text = registry.render_prometheus() if registry is not None \
                    else ""
                self._reply(200, text.encode("utf-8"), _METRICS_CONTENT_TYPE)
            elif route == "/health":
                self._reply_json(monitor.health_payload())
            elif route == "/querylog":
                limit = self._limit_of(parsed.query)
                self._reply_json(monitor.querylog_payload(limit=limit))
            elif route == "/quality":
                self._reply_json(monitor.quality_payload())
            elif route == "/":
                self._reply_json({"routes": ["/metrics", "/health",
                                             "/querylog", "/quality"]})
            else:
                self._reply_json({"error": f"unknown route {route!r}"},
                                 status=404)
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as error:  # noqa: BLE001 - a scrape must not kill the thread
            self._reply_json({"error": f"{type(error).__name__}: {error}"},
                             status=500)

    @staticmethod
    def _limit_of(query_string: str) -> Optional[int]:
        values = parse_qs(query_string).get("limit")
        if not values:
            return None
        try:
            limit = int(values[-1])
        except ValueError:
            return None
        return limit if limit > 0 else None


class MonitoringServer:
    """A daemon-threaded HTTP endpoint over one session monitor.

    ``port=0`` (the default) binds a free port — read it back from
    :attr:`port` / :attr:`url` after :meth:`start`.  Use as a context
    manager or call :meth:`close` explicitly; the thread is a daemon either
    way, so a forgotten server never blocks interpreter exit.
    """

    def __init__(self, monitor, *, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self._monitor = monitor
        self._requested = (host, port)
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "MonitoringServer":
        """Bind the socket and start serving; idempotent."""
        if self._httpd is not None:
            return self
        handler = type("BoundMonitorRequestHandler",
                       (_MonitorRequestHandler,),
                       {"monitor": self._monitor})
        self._httpd = ThreadingHTTPServer(self._requested, handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="repro-monitoring-endpoint",
                                        daemon=True)
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving and release the socket; idempotent."""
        httpd, thread = self._httpd, self._thread
        self._httpd = self._thread = None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "MonitoringServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def running(self) -> bool:
        return self._httpd is not None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (the requested pair before start)."""
        if self._httpd is None:
            return self._requested
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def port(self) -> int:
        return self.address[1]

    @property
    def url(self) -> str:
        """The endpoint's base URL, e.g. ``http://127.0.0.1:43521``."""
        host, port = self.address
        return f"http://{host}:{port}"


def start_monitoring_server(monitor, *, host: str = "127.0.0.1",
                            port: int = 0) -> MonitoringServer:
    """Start (and return) a :class:`MonitoringServer` over ``monitor``."""
    return MonitoringServer(monitor, host=host, port=port).start()
