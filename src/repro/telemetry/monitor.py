"""Operational monitoring: the query log, rolling history and cache accounting.

PR 6 gave the engine spans, metric families and EXPLAIN ANALYZE; this module
is what *consumes* them continuously.  A :class:`SessionMonitor` attached to
an :class:`~repro.engine.session.EngineSession` (``EngineSession(monitor=True)``)
receives every prepared-query execution and error and maintains:

* a :class:`QueryLog` — a bounded ring buffer of :class:`QueryLogEntry`
  records (fingerprint, query name, database id, execution mode, elapsed,
  phase times, cardinalities, cache hits, error if any).  Runs slower than
  the configured :attr:`MonitorConfig.slow_query_seconds` are flagged, and
  the monitor *arms* slow-query tracing for that query: its next execution
  runs under a private recording tracer whose full span trace is retained on
  the log entry if the run is slow again — steady-state fast traffic never
  pays for span recording;
* a **rolling history** — windowed p50/p95/p99 latency, QPS and error counts
  per prepared query, computed on demand from the log (see
  :meth:`SessionMonitor.history`);
* a :class:`~repro.telemetry.qualitylog.PlanQualityTracker` — per-fingerprint
  q-error accounting of the estimated-vs-actual cardinalities every adaptive
  run already carries (the data feed for estimate-drift re-optimisation);
* **cache/resource gauges** — :meth:`SessionMonitor.collect` polls the
  planner LRU (``cache_info``), the hash-index cache, the column-block cache
  and the per-database catalog sizes into gauges on the session's
  :class:`~repro.telemetry.metrics.MetricsRegistry`, so one ``/metrics``
  scrape sees the full warm-path cache state.

``python -m repro.telemetry.monitor`` is the demo/smoke entry point: it
starts the :mod:`~repro.telemetry.exposition` endpoint, traces a mixed
acyclic + cyclic workload (including one induced error and one slow query),
scrapes ``/metrics`` / ``/health`` over live HTTP and validates the
``/querylog`` payload against the checked-in ``querylog_schema.json``.
"""

from __future__ import annotations

import json
import threading
import time
import weakref
from collections import deque
from dataclasses import dataclass, replace
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Tuple

from .qualitylog import PlanQualityTracker
from .schema import QUERYLOG_SCHEMA_PATH, validate_query_log

__all__ = [
    "MonitorConfig",
    "QueryLogEntry",
    "QueryLog",
    "QueryHistory",
    "SessionMonitor",
    "rolling_history",
    "QUERYLOG_SCHEMA_PATH",
    "validate_query_log",
    "main",
]


# --------------------------------------------------------------------------- #
# Configuration
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class MonitorConfig:
    """The monitor's knobs, all with serviceable defaults.

    * ``log_capacity`` — how many :class:`QueryLogEntry` records the ring
      buffer retains (older entries are dropped, counted in
      :attr:`QueryLog.dropped`);
    * ``slow_query_seconds`` — runs at or above this wall-time are flagged
      slow and arm span-trace capture for the query's next execution
      (``None`` disables slow-query handling entirely);
    * ``window_seconds`` — the default rolling-history window;
    * ``quality_drift_threshold`` / ``quality_drift_min_runs`` /
      ``quality_window`` — when a fingerprint's recent mean q-error exceeds
      the threshold over at least ``min_runs`` recent runs it is flagged as
      drifted (see :class:`~repro.telemetry.qualitylog.PlanQualityTracker`).
    """

    log_capacity: int = 256
    slow_query_seconds: Optional[float] = None
    window_seconds: float = 60.0
    quality_drift_threshold: float = 2.0
    quality_drift_min_runs: int = 3
    quality_window: int = 32


# --------------------------------------------------------------------------- #
# The query log
# --------------------------------------------------------------------------- #
class QueryLogEntry:
    """One prepared-query execution, as the monitor recorded it.

    Treat instances as immutable.  The entry stores the run's (immutable)
    statistics object and derives the cardinality/cache fields from it
    lazily — recording a run on the warm path then costs one small
    11-slot allocation instead of copying ~20 fields out of an object the
    reader may never look at.  Errored runs carry no statistics, and every
    derived field falls back to its empty default.
    """

    __slots__ = ("seq", "ts", "query", "fingerprint", "kind", "database",
                 "elapsed_seconds", "error", "slow", "trace", "_statistics")

    def __init__(self, query: str, fingerprint: str, kind: str,
                 database: str, elapsed_seconds: float = 0.0,
                 statistics: Optional[object] = None,
                 error: Optional[str] = None, slow: bool = False,
                 trace: Optional[Tuple[Mapping[str, object], ...]] = None,
                 seq: int = 0, ts: float = 0.0) -> None:
        self.seq = seq
        self.ts = ts
        self.query = query
        self.fingerprint = fingerprint
        self.kind = kind
        self.database = database
        self.elapsed_seconds = elapsed_seconds
        self.error = error
        self.slow = slow
        self.trace = trace
        self._statistics = statistics

    def __repr__(self) -> str:
        state = f"error={self.error!r}" if self.error else \
            f"rows={self.output_rows}"
        return (f"QueryLogEntry(seq={self.seq}, query={self.query!r}, "
                f"database={self.database!r}, "
                f"elapsed={self.elapsed_seconds * 1000:.3f}ms, {state})")

    @property
    def ok(self) -> bool:
        """``True`` when the run returned a result (no error)."""
        return self.error is None

    @property
    def statistics(self) -> Optional[object]:
        """The run's statistics object (``None`` for errored runs)."""
        return self._statistics

    @property
    def mode(self) -> str:
        mode = getattr(self._statistics, "execution_mode", None)
        return str(mode) if mode is not None else "-"

    @property
    def phase_times(self) -> Tuple[Tuple[str, float], ...]:
        return tuple(getattr(self._statistics, "phase_times", ()) or ())

    @property
    def input_rows(self) -> int:
        return sum(getattr(self._statistics, "input_sizes", ()) or ())

    @property
    def output_rows(self) -> int:
        return getattr(self._statistics, "output_size", 0) or 0

    @property
    def max_intermediate(self) -> int:
        return getattr(self._statistics, "max_intermediate", 0) or 0

    @property
    def semijoin_steps(self) -> int:
        return getattr(self._statistics, "semijoin_steps", 0) or 0

    @property
    def rows_removed(self) -> int:
        return getattr(self._statistics, "rows_removed_by_reduction", 0) or 0

    @property
    def plan_cache_hit(self) -> bool:
        return bool(getattr(self._statistics, "plan_cache_hit", False))

    @property
    def index_cache_hits(self) -> int:
        return getattr(self._statistics, "index_cache_hits", 0) or 0

    @property
    def index_cache_misses(self) -> int:
        return getattr(self._statistics, "index_cache_misses", 0) or 0

    @property
    def adaptive(self) -> bool:
        return bool(getattr(self._statistics, "adaptive", False))

    @property
    def estimated_output_rows(self) -> Optional[int]:
        return getattr(self._statistics, "estimated_output_size", None)

    @property
    def shards(self) -> Optional[int]:
        """Shard fan-out of the run (``None`` for unsharded executions)."""
        return getattr(self._statistics, "shards", None)

    @property
    def shard_skew(self) -> Optional[float]:
        """Max/mean partitioned-row skew of a sharded run (``None`` unsharded)."""
        return getattr(self._statistics, "shard_skew", None)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready dict (the ``/querylog`` payload's entry shape)."""
        return {
            "seq": self.seq,
            "ts": self.ts,
            "query": self.query,
            "fingerprint": self.fingerprint,
            "kind": self.kind,
            "database": self.database,
            "mode": self.mode,
            "elapsed_seconds": self.elapsed_seconds,
            "phase_times": [[phase, seconds]
                            for phase, seconds in self.phase_times],
            "input_rows": self.input_rows,
            "output_rows": self.output_rows,
            "max_intermediate": self.max_intermediate,
            "semijoin_steps": self.semijoin_steps,
            "rows_removed": self.rows_removed,
            "plan_cache_hit": self.plan_cache_hit,
            "index_cache_hits": self.index_cache_hits,
            "index_cache_misses": self.index_cache_misses,
            "adaptive": self.adaptive,
            "estimated_output_rows": self.estimated_output_rows,
            "shards": self.shards,
            "error": self.error,
            "slow": self.slow,
            "traced": self.trace is not None,
        }


class QueryLog:
    """A thread-safe bounded ring buffer of :class:`QueryLogEntry` records.

    The deque's ``maxlen`` enforces the capacity — a full log drops its
    oldest entry on every append (the drop is counted, never silent), so the
    buffer can absorb unbounded traffic at O(capacity) memory.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("the query log needs capacity >= 1")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._entries: Deque[QueryLogEntry] = deque(maxlen=capacity)
        self._seq = 0
        self._dropped = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def dropped(self) -> int:
        """How many entries the ring has evicted since creation."""
        with self._lock:
            return self._dropped

    @property
    def total_recorded(self) -> int:
        """How many entries were ever appended (monotonic sequence counter)."""
        with self._lock:
            return self._seq

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def append(self, **fields: object) -> QueryLogEntry:
        """Record one run; the log assigns ``seq`` and ``ts`` itself."""
        return self.push(QueryLogEntry(**fields))  # type: ignore[arg-type]

    def push(self, entry: QueryLogEntry) -> QueryLogEntry:
        """Record an already-built entry (the warm path — construction stays
        outside the lock; the log still assigns ``seq`` and ``ts``)."""
        with self._lock:
            self._seq += 1
            entry.seq = self._seq
            entry.ts = time.time()
            if len(self._entries) == self._capacity:
                self._dropped += 1
            self._entries.append(entry)
        return entry

    def entries(self, *, limit: Optional[int] = None,
                query: Optional[str] = None) -> Tuple[QueryLogEntry, ...]:
        """A snapshot, oldest first; ``limit`` keeps the newest N."""
        with self._lock:
            snapshot: List[QueryLogEntry] = list(self._entries)
        if query is not None:
            snapshot = [entry for entry in snapshot if entry.query == query]
        if limit is not None:
            snapshot = snapshot[-limit:]
        return tuple(snapshot)

    def slow_entries(self) -> Tuple[QueryLogEntry, ...]:
        """Every retained entry flagged slow, oldest first."""
        return tuple(entry for entry in self.entries() if entry.slow)

    def errors(self) -> Tuple[QueryLogEntry, ...]:
        """Every retained entry that recorded an error, oldest first."""
        return tuple(entry for entry in self.entries() if entry.error is not None)

    def clear(self) -> None:
        """Drop retained entries (the sequence and drop counters survive)."""
        with self._lock:
            self._entries.clear()


# --------------------------------------------------------------------------- #
# Rolling history
# --------------------------------------------------------------------------- #
def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """The q-th percentile (0..100) of a pre-sorted sequence, interpolated."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = (len(sorted_values) - 1) * (q / 100.0)
    lower = int(position)
    upper = min(lower + 1, len(sorted_values) - 1)
    fraction = position - lower
    return sorted_values[lower] * (1.0 - fraction) + sorted_values[upper] * fraction


@dataclass(frozen=True)
class QueryHistory:
    """One prepared query's rolling-window latency/throughput summary."""

    query: str
    window_seconds: float
    runs: int
    errors: int
    qps: float
    p50_seconds: float
    p95_seconds: float
    p99_seconds: float
    max_seconds: float
    mean_seconds: float
    slow_runs: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "query": self.query,
            "window_seconds": self.window_seconds,
            "runs": self.runs,
            "errors": self.errors,
            "qps": self.qps,
            "p50_seconds": self.p50_seconds,
            "p95_seconds": self.p95_seconds,
            "p99_seconds": self.p99_seconds,
            "max_seconds": self.max_seconds,
            "mean_seconds": self.mean_seconds,
            "slow_runs": self.slow_runs,
        }


def rolling_history(entries: Sequence[QueryLogEntry], *,
                    window_seconds: float = 60.0,
                    now: Optional[float] = None
                    ) -> Tuple[QueryHistory, ...]:
    """Windowed per-query percentiles/QPS over a query-log snapshot.

    Only entries whose ``ts`` falls inside ``[now - window, now]`` count.
    Errored runs contribute to ``runs``/``errors`` and QPS but not to the
    latency percentiles (their elapsed time measures the failure path, not
    the query).  Queries are returned name-sorted.
    """
    mark = time.time() if now is None else now
    cutoff = mark - window_seconds
    buckets: Dict[str, List[QueryLogEntry]] = {}
    for entry in entries:
        if entry.ts >= cutoff:
            buckets.setdefault(entry.query, []).append(entry)
    histories: List[QueryHistory] = []
    for query in sorted(buckets):
        bucket = buckets[query]
        latencies = sorted(entry.elapsed_seconds for entry in bucket
                           if entry.error is None)
        errors = sum(1 for entry in bucket if entry.error is not None)
        histories.append(QueryHistory(
            query=query, window_seconds=window_seconds, runs=len(bucket),
            errors=errors, qps=len(bucket) / window_seconds,
            p50_seconds=_percentile(latencies, 50.0),
            p95_seconds=_percentile(latencies, 95.0),
            p99_seconds=_percentile(latencies, 99.0),
            max_seconds=latencies[-1] if latencies else 0.0,
            mean_seconds=(sum(latencies) / len(latencies)) if latencies else 0.0,
            slow_runs=sum(1 for entry in bucket if entry.slow)))
    return tuple(histories)


# --------------------------------------------------------------------------- #
# The session monitor
# --------------------------------------------------------------------------- #
class SessionMonitor:
    """The operational state of one :class:`~repro.engine.session.EngineSession`.

    Created by ``EngineSession(monitor=...)`` (which accepts ``True``, a
    :class:`MonitorConfig` or a ready monitor) and reachable as
    ``session.monitor``.  The monitor is passive until
    :meth:`~repro.engine.session.EngineSession` binds it — ``bind`` hands it
    the session's planner and metrics registry; every
    ``PreparedQuery._traced_run`` then feeds :meth:`observe` /
    :meth:`observe_error`.
    """

    def __init__(self, config: Optional[MonitorConfig] = None) -> None:
        self.config = config if config is not None else MonitorConfig()
        self.log = QueryLog(self.config.log_capacity)
        self.quality = PlanQualityTracker(
            drift_threshold=self.config.quality_drift_threshold,
            drift_min_runs=self.config.quality_drift_min_runs,
            window=self.config.quality_window)
        self.started_at = time.time()
        self._lock = threading.Lock()
        self._armed: set = set()          # query names armed for slow tracing
        self._registry = None             # bound by the session
        self._planner = None
        self._session_ref = None
        # Databases seen by observe(), weakly held, labelled db0, db1, …
        self._database_labels: "weakref.WeakKeyDictionary[object, str]" = \
            weakref.WeakKeyDictionary()
        self._database_counter = 0
        self._slow_counter = None
        self._error_counter = None
        # Shard-parallel accounting, folded in observe(): how many sharded
        # runs, total fan-out, merge wall-time, and the skew distribution.
        self._shard_runs = 0
        self._shard_fanout_total = 0
        self._shard_merge_seconds = 0.0
        self._shard_skew_max = 0.0
        self._shard_skew_sum = 0.0
        self._shard_skew_count = 0

    # ------------------------------------------------------------------ #
    # Session binding
    # ------------------------------------------------------------------ #
    def bind(self, session: object) -> "SessionMonitor":
        """Attach to a session (its registry and planner); idempotent.

        A monitor belongs to exactly one session — binding a second raises,
        so two sessions can never interleave entries in one log.
        """
        with self._lock:
            if self._session_ref is not None:
                bound = self._session_ref()
                if bound is not None and bound is not session:
                    raise ValueError("this SessionMonitor is already bound to "
                                     "a different EngineSession")
            self._session_ref = weakref.ref(session)
            self._registry = session.metrics
            self._planner = session.planner
            self._slow_counter = self._registry.counter(
                "engine_slow_queries_total",
                "Runs at or above the slow-query threshold.")
            self._error_counter = self._registry.counter(
                "engine_monitored_errors_total",
                "Errored runs recorded in the query log.")
        return self

    @property
    def registry(self):
        """The bound session's metrics registry (``None`` before binding)."""
        return self._registry

    @property
    def uptime_seconds(self) -> float:
        return time.time() - self.started_at

    # ------------------------------------------------------------------ #
    # Observation (called from PreparedQuery._traced_run)
    # ------------------------------------------------------------------ #
    def database_label(self, database: Optional[object]) -> str:
        """A stable ``db<N>`` label for a database instance ("-" when none)."""
        if database is None:
            return "-"
        with self._lock:
            label = self._database_labels.get(database)
            if label is None:
                label = f"db{self._database_counter}"
                self._database_counter += 1
                self._database_labels[database] = label
        return label

    def wants_trace(self, query: str) -> bool:
        """``True`` when the query's next run should capture a span trace."""
        if self.config.slow_query_seconds is None:
            return False
        with self._lock:
            return query in self._armed

    def observe(self, *, query: str, fingerprint: str, kind: str,
                statistics: object, elapsed_seconds: float,
                database: Optional[object] = None,
                trace_records: Optional[Sequence[Mapping[str, object]]] = None
                ) -> QueryLogEntry:
        """Fold one successful run into the log, the quality tracker and metrics."""
        threshold = self.config.slow_query_seconds
        slow = threshold is not None and elapsed_seconds >= threshold
        trace: Optional[Tuple[Mapping[str, object], ...]] = None
        if slow and trace_records:
            trace = tuple(trace_records)
        if threshold is not None:
            with self._lock:
                if slow and trace is None:
                    # Slow but untraced: arm capture for the next run.
                    self._armed.add(query)
                else:
                    self._armed.discard(query)
        # Positional construction, outside any lock — the warm path's one
        # allocation.  The statistics object rides along and the wide
        # fields derive from it lazily (see QueryLogEntry).
        entry = self.log.push(QueryLogEntry(
            query, fingerprint, kind, self.database_label(database),
            elapsed_seconds, statistics, None, slow, trace))
        self.quality.fold_run(fingerprint=fingerprint, query=query,
                              statistics=statistics)
        shards = getattr(statistics, "shards", None)
        if shards is not None:
            skew = getattr(statistics, "shard_skew", None)
            merge_seconds = dict(
                getattr(statistics, "phase_times", ()) or ()).get("merge", 0.0)
            with self._lock:
                self._shard_runs += 1
                self._shard_fanout_total += shards
                self._shard_merge_seconds += merge_seconds
                if skew is not None:
                    self._shard_skew_max = max(self._shard_skew_max, skew)
                    self._shard_skew_sum += skew
                    self._shard_skew_count += 1
        if slow and self._slow_counter is not None:
            self._slow_counter.inc()
        return entry

    def observe_error(self, *, query: str, fingerprint: str, kind: str,
                      elapsed_seconds: float, error: BaseException,
                      database: Optional[object] = None) -> QueryLogEntry:
        """Record one failed run (kept in the same ring, flagged by ``error``)."""
        entry = self.log.append(
            query=query, fingerprint=fingerprint, kind=kind,
            database=self.database_label(database),
            elapsed_seconds=elapsed_seconds,
            error=f"{type(error).__name__}: {error}")
        if self._error_counter is not None:
            self._error_counter.inc()
        return entry

    # ------------------------------------------------------------------ #
    # Rolling history
    # ------------------------------------------------------------------ #
    def history(self, *, window_seconds: Optional[float] = None
                ) -> Tuple[QueryHistory, ...]:
        """Windowed p50/p95/p99 latency and QPS per prepared query."""
        window = window_seconds if window_seconds is not None \
            else self.config.window_seconds
        return rolling_history(self.log.entries(), window_seconds=window)

    # ------------------------------------------------------------------ #
    # Cache / resource collection
    # ------------------------------------------------------------------ #
    def collect(self) -> Dict[str, float]:
        """Poll every cache into gauges on the session registry; return the values.

        Covers the planner LRU (hits/misses/size/capacity), the hash-index
        cache, the column-block cache, the query-log occupancy and the
        per-database relation/row counts of every database the monitor has
        seen (weakly tracked — collected databases drop out on their own).
        """
        from ..engine.columnar.block import column_cache_info
        from ..engine.indexes import index_cache_info

        values: Dict[str, float] = {}
        registry = self._registry
        if registry is None:
            return values

        def gauge(name: str, help: str, value: float,
                  labels: Optional[Mapping[str, object]] = None) -> None:
            registry.gauge(name, help, labels=labels).set(value)
            suffix = "" if not labels else \
                "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
            values[f"{name}{suffix}"] = float(value)

        if self._planner is not None:
            info = self._planner.cache_info()
            gauge("engine_planner_cache_hits", "Planner LRU hits.", info.hits)
            gauge("engine_planner_cache_misses", "Planner LRU misses.",
                  info.misses)
            gauge("engine_planner_cache_size",
                  "Compiled plans resident in the planner LRU.", info.size)
            gauge("engine_planner_cache_capacity",
                  "The planner LRU's capacity.", info.capacity)
        for prefix, info in (("engine_index_cache", index_cache_info()),
                             ("engine_column_cache", column_cache_info())):
            help_what = "hash-index" if "index" in prefix else "column-block"
            gauge(f"{prefix}_hits", f"Cumulative {help_what} cache hits.",
                  info["hits"])
            gauge(f"{prefix}_misses", f"Cumulative {help_what} cache misses.",
                  info["misses"])
            gauge(f"{prefix}_relations",
                  f"Relations resident in the {help_what} cache.",
                  info["relations"])
        column_info = column_cache_info()
        gauge("engine_keyset_cache_hits",
              "Selection-aware key-id-set cache hits on block storages.",
              column_info["keyset_hits"])
        gauge("engine_keyset_cache_misses",
              "Selection-aware key-id-set cache misses on block storages.",
              column_info["keyset_misses"])
        gauge("engine_querylog_entries",
              "Entries retained in the query log ring buffer.", len(self.log))
        gauge("engine_querylog_dropped",
              "Entries the query log ring buffer has evicted.",
              self.log.dropped)
        with self._lock:
            shard_runs = self._shard_runs
            shard_fanout = self._shard_fanout_total
            shard_merge = self._shard_merge_seconds
            shard_skew_max = self._shard_skew_max
            shard_skew_mean = (self._shard_skew_sum / self._shard_skew_count
                               if self._shard_skew_count else 0.0)
        gauge("engine_shard_runs_total",
              "Sharded executions observed by the monitor.", shard_runs)
        gauge("engine_shard_fanout_total",
              "Total shards fanned out across sharded executions.",
              shard_fanout)
        gauge("engine_shard_merge_seconds_total",
              "Cumulative wall-time spent merging shard results.",
              shard_merge)
        gauge("engine_shard_skew_max",
              "The worst max/mean shard-skew observed (1.0 = balanced).",
              shard_skew_max)
        gauge("engine_shard_skew_mean",
              "Mean max/mean shard-skew across sharded executions.",
              shard_skew_mean)
        with self._lock:
            databases = list(self._database_labels.items())
        for database, label in databases:
            relations = getattr(database, "relations", None)
            if relations is None:
                continue
            rels = relations()
            gauge("engine_database_relations",
                  "Relations in a monitored database.", len(rels),
                  labels={"database": label})
            gauge("engine_database_rows",
                  "Stored rows in a monitored database.",
                  sum(len(relation) for relation in rels),
                  labels={"database": label})
        return values

    # ------------------------------------------------------------------ #
    # JSON payloads (served by the exposition endpoint)
    # ------------------------------------------------------------------ #
    def querylog_payload(self, *, limit: Optional[int] = None
                         ) -> Dict[str, object]:
        """The ``/querylog`` JSON document (validated by ``querylog_schema.json``)."""
        return {
            "capacity": self.log.capacity,
            "recorded": self.log.total_recorded,
            "dropped": self.log.dropped,
            "slow_query_seconds": self.config.slow_query_seconds,
            "entries": [entry.to_dict()
                        for entry in self.log.entries(limit=limit)],
            "history": [history.to_dict() for history in self.history()],
        }

    def quality_payload(self) -> Dict[str, object]:
        """The ``/quality`` JSON document (per-fingerprint q-error accounting)."""
        return self.quality.to_dict()

    def health_payload(self) -> Dict[str, object]:
        """The ``/health`` JSON document."""
        errors = len(self.log.errors())
        return {
            "status": "ok",
            "uptime_seconds": self.uptime_seconds,
            "queries_recorded": self.log.total_recorded,
            "errors_retained": errors,
            "slow_retained": len(self.log.slow_entries()),
            "drifted_fingerprints": len(self.quality.drifted_fingerprints()),
        }

    def describe(self) -> str:
        """A one-line monitor summary."""
        return (f"SessionMonitor(entries={len(self.log)}/{self.log.capacity} "
                f"recorded={self.log.total_recorded} "
                f"dropped={self.log.dropped} "
                f"slow={len(self.log.slow_entries())} "
                f"errors={len(self.log.errors())} "
                f"drifted={len(self.quality.drifted_fingerprints())})")


# --------------------------------------------------------------------------- #
# Demo / smoke entry point
# --------------------------------------------------------------------------- #
def _run_demo_workload(session) -> Dict[str, object]:
    """A mixed acyclic + cyclic workload with one induced error and one slow query."""
    from ..exceptions import SchemaError
    from ..generators import (
        generate_database,
        skewed_chain_database,
        skewed_chain_endpoints,
        triangle_core_chain,
    )
    from ..relational.schema import DatabaseSchema, RelationSchema

    chain_length = 4
    acyclic_dbs = [skewed_chain_database(chain_length, heads=4, fanout=3,
                                         junction_values=2, seed=seed)
                   for seed in range(3)]
    prepared_acyclic = session.prepare(acyclic_dbs[0],
                                       skewed_chain_endpoints(chain_length),
                                       name="chain-endpoints")
    for _ in range(4):
        prepared_acyclic.execute_many(acyclic_dbs)

    hypergraph = triangle_core_chain(3)
    schema = DatabaseSchema(
        RelationSchema.of(f"R{index}", sorted(edge, key=str))
        for index, edge in enumerate(hypergraph.edges))
    cyclic_db = generate_database(schema, universe_rows=30, seed=11)
    prepared_cyclic = session.prepare(cyclic_db, name="triangle-core")
    for _ in range(3):
        prepared_cyclic.execute(cyclic_db)

    # One induced error: execute against a database of the wrong schema.
    induced_errors = 0
    try:
        prepared_cyclic.execute(acyclic_dbs[0])
    except SchemaError:
        induced_errors += 1

    # One slow query: drop the threshold to zero so the next runs are
    # "slow" by definition, which arms (then captures) the span trace.
    session.monitor.config = replace(session.monitor.config,
                                     slow_query_seconds=0.0)
    prepared_acyclic.execute(acyclic_dbs[0])   # slow, arms tracing
    prepared_acyclic.execute(acyclic_dbs[0])   # slow again, trace retained
    return {
        "acyclic_kind": prepared_acyclic.kind,
        "cyclic_kind": prepared_cyclic.kind,
        "induced_errors": induced_errors,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the monitored demo workload against a live ``/metrics`` endpoint."""
    import sys
    import urllib.request

    from ..engine.session import EngineSession
    from .exposition import MonitoringServer

    del argv  # no flags yet; the entry point is deliberately zero-config
    session = EngineSession(monitor=MonitorConfig(log_capacity=128))
    monitor = session.monitor
    server = MonitoringServer(monitor)
    server.start()
    try:
        workload = _run_demo_workload(session)
        responses: Dict[str, object] = {}
        for route in ("/health", "/metrics", "/querylog", "/quality"):
            with urllib.request.urlopen(server.url + route, timeout=10) as reply:
                body = reply.read().decode("utf-8")
                responses[route] = body
                if reply.status != 200:
                    print(f"monitor smoke FAILED: {route} -> {reply.status}",
                          file=sys.stderr)
                    return 1
        querylog = json.loads(responses["/querylog"])
        validate_query_log(querylog)
        health = json.loads(responses["/health"])
        metrics_text = responses["/metrics"]
        for required in ("engine_queries_total", "engine_planner_cache_size",
                         "engine_querylog_entries"):
            if required not in metrics_text:
                print(f"monitor smoke FAILED: /metrics lacks {required}",
                      file=sys.stderr)
                return 1
        if not any(entry["error"] for entry in querylog["entries"]):
            print("monitor smoke FAILED: the induced error never reached "
                  "the query log", file=sys.stderr)
            return 1
        if not any(entry["slow"] and entry["traced"]
                   for entry in querylog["entries"]):
            print("monitor smoke FAILED: no slow entry retained its trace",
                  file=sys.stderr)
            return 1
        summary = {
            "workload": workload,
            "endpoint": server.url,
            "health": health,
            "querylog_entries": len(querylog["entries"]),
            "history": querylog["history"],
            "quality": json.loads(responses["/quality"]),
            "monitor": monitor.describe(),
        }
        print(json.dumps(summary, indent=2, default=str))
        print("monitor smoke OK", file=sys.stderr)
        return 0
    finally:
        server.close()


if __name__ == "__main__":  # pragma: no cover - exercised by the CI smoke job
    import sys

    sys.exit(main())
