"""The paper's figures and a few classic database schemas, as ready-made objects.

Every figure of the paper that depicts a hypergraph is available here as a
constructor returning a named :class:`~repro.core.hypergraph.Hypergraph`,
together with the sacred sets and expected results of the worked examples, so
tests and benchmarks can refer to "Fig. 1" directly.

Fig. 5 is a reconstruction: the paper describes the phenomenon ("two apparent
paths between A and F — either the second or the third edge may be
eliminated") but does not list the edge set in the text; the 4-edge acyclic
chain used here exhibits exactly the stated behaviour (see DESIGN.md §5).
Figures 4, 7 and 8 are proof diagrams with no edge sets to reproduce.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from ..core.hypergraph import Hypergraph
from ..core.nodes import NodeSet
from ..relational.schema import DatabaseSchema, RelationSchema

__all__ = [
    "figure_1",
    "figure_1_sacred",
    "figure_1_expected_reduction",
    "cyclic_counterexample",
    "cyclic_counterexample_sacred",
    "figure_5",
    "figure_5_endpoints",
    "example_5_1_hypergraph",
    "example_5_1_sacred",
    "example_5_1_independent_tree_sets",
    "triangle",
    "square_cycle",
    "triangle_with_covering_edge",
    "paper_hypergraphs",
    "university_schema",
    "supplier_part_schema",
    "cyclic_supplier_schema",
]


# --------------------------------------------------------------------------- #
# Figures and worked examples of the paper
# --------------------------------------------------------------------------- #
def figure_1() -> Hypergraph:
    """Fig. 1: the acyclic hypergraph with edges {A,B,C}, {C,D,E}, {A,E,F}, {A,C,E}."""
    return Hypergraph.from_compact(["ABC", "CDE", "AEF", "ACE"], name="Fig. 1")


def figure_1_sacred() -> NodeSet:
    """The sacred set X = {A, D} used in Examples 2.2, 3.1 and 3.3."""
    return frozenset({"A", "D"})


def figure_1_expected_reduction() -> FrozenSet[FrozenSet[str]]:
    """The result of Examples 2.2 / 3.3: GR(H, {A,D}) = TR(H, {A,D}) = {{A,C,E}, {C,D,E}}."""
    return frozenset({frozenset("ACE"), frozenset("CDE")})


def cyclic_counterexample() -> Hypergraph:
    """The cyclic example after Theorem 3.5: edges {A,B}, {A,C}, {B,C}, {A,D}.

    With only ``D`` sacred, tableau reduction collapses to {{D}} while Graham
    reduction cannot remove anything — the theorem genuinely needs acyclicity.
    """
    return Hypergraph.from_compact(["AB", "AC", "BC", "AD"], name="cyclic counterexample")


def cyclic_counterexample_sacred() -> NodeSet:
    """The sacred set {D} of the post-Theorem-3.5 example."""
    return frozenset({"D"})


def figure_5() -> Hypergraph:
    """Fig. 5 (reconstructed): an acyclic hypergraph with two apparent paths between A and F.

    The chain {A,B,C}, {B,C,D}, {C,D,E}, {D,E,F} is acyclic, the canonical
    connection CC({A, F}) contains all four edges, and yet either of the two
    interior edges can be dropped while A and F stay connected — the
    phenomenon the figure illustrates and the Section 7 footnote warns about.
    """
    return Hypergraph.from_compact(["ABC", "BCD", "CDE", "DEF"], name="Fig. 5")


def figure_5_endpoints() -> Tuple[str, str]:
    """The two nodes between which Fig. 5 exhibits two apparent paths."""
    return ("A", "F")


def example_5_1_hypergraph() -> Hypergraph:
    """Example 5.1 / Fig. 6: the hypergraph of Fig. 1 with edge {A,C,E} removed."""
    return Hypergraph.from_compact(["ABC", "CDE", "AEF"], name="Example 5.1")


def example_5_1_sacred() -> NodeSet:
    """The set X = {A, C} of Example 5.1 (CC(X) = {{A, C}})."""
    return frozenset({"A", "C"})


def example_5_1_independent_tree_sets() -> Tuple[FrozenSet[str], ...]:
    """The sets {{A}, {E}, {C}} forming the independent tree/path of Fig. 6."""
    return (frozenset({"A"}), frozenset({"E"}), frozenset({"C"}))


def triangle() -> Hypergraph:
    """The 3-cycle {A,B}, {B,C}, {C,A} — the smallest cyclic hypergraph."""
    return Hypergraph.from_compact(["AB", "BC", "CA"], name="triangle")


def square_cycle() -> Hypergraph:
    """The 4-cycle {A,B}, {B,C}, {C,D}, {D,A}."""
    return Hypergraph.from_compact(["AB", "BC", "CD", "DA"], name="square")


def triangle_with_covering_edge() -> Hypergraph:
    """{A,B}, {B,C}, {C,A}, {A,B,C}: α-acyclic but not β-acyclic (and not Berge-acyclic)."""
    return Hypergraph.from_compact(["AB", "BC", "CA", "ABC"], name="covered triangle")


def paper_hypergraphs() -> Dict[str, Hypergraph]:
    """Every named hypergraph of the paper (plus the small classics), keyed by label."""
    return {
        "fig1": figure_1(),
        "fig5": figure_5(),
        "example_5_1": example_5_1_hypergraph(),
        "cyclic_counterexample": cyclic_counterexample(),
        "triangle": triangle(),
        "square": square_cycle(),
        "covered_triangle": triangle_with_covering_edge(),
    }


# --------------------------------------------------------------------------- #
# Classic database schemas used by the examples and the E-UR / E-JOIN benchmarks
# --------------------------------------------------------------------------- #
def university_schema() -> DatabaseSchema:
    """An acyclic "university" schema in the spirit of the universal-relation papers.

    Objects: ENROL(Student, Course), TEACHES(Course, Teacher),
    MEETS(Course, Room, Hour), LIVES(Student, Dorm).  The object hypergraph is
    acyclic, so every window query has a uniquely defined connection.
    """
    return DatabaseSchema.from_dict({
        "ENROL": ("Student", "Course"),
        "TEACHES": ("Course", "Teacher"),
        "MEETS": ("Course", "Room", "Hour"),
        "LIVES": ("Student", "Dorm"),
    }, name="university")


def supplier_part_schema() -> DatabaseSchema:
    """An acyclic supplier–part–project schema (chain-shaped objects)."""
    return DatabaseSchema.from_dict({
        "SUPPLIES": ("Supplier", "Part"),
        "USED_IN": ("Part", "Project"),
        "LOCATED": ("Project", "City"),
        "SUPPLIER_INFO": ("Supplier", "SCity", "Status"),
    }, name="supplier-part")


def cyclic_supplier_schema() -> DatabaseSchema:
    """A cyclic variant: Supplier–Part, Part–Project, Project–Supplier form a 3-cycle.

    The canonical connection of {Supplier, Project} is then *not* uniquely
    defined, which is the situation the paper's Section 7 warns about.
    """
    return DatabaseSchema.from_dict({
        "SUPPLIES": ("Supplier", "Part"),
        "USED_IN": ("Part", "Project"),
        "SERVES": ("Project", "Supplier"),
    }, name="cyclic supplier")
