"""Workload generators: the paper's figures, random hypergraphs, and synthetic databases."""

from .classic import (
    cyclic_counterexample,
    cyclic_counterexample_sacred,
    cyclic_supplier_schema,
    example_5_1_hypergraph,
    example_5_1_independent_tree_sets,
    example_5_1_sacred,
    figure_1,
    figure_1_expected_reduction,
    figure_1_sacred,
    figure_5,
    figure_5_endpoints,
    paper_hypergraphs,
    square_cycle,
    supplier_part_schema,
    triangle,
    triangle_with_covering_edge,
    university_schema,
)
from .random_hypergraphs import (
    chain_hypergraph,
    mutate_to_cyclic,
    node_names,
    random_acyclic_hypergraph,
    random_cyclic_hypergraph,
    random_hypergraph,
    random_sacred_set,
    ring_hypergraph,
    star_hypergraph,
)
from .workloads import (
    add_dangling_tuples,
    clique_augmented_chain,
    cyclic_workload_families,
    generate_consistent_database,
    generate_database,
    k_cycle_hypergraph,
    query_attribute_workload,
    skewed_chain_database,
    skewed_chain_endpoints,
    triangle_core_chain,
)

__all__ = [
    # figures / classics
    "figure_1", "figure_1_sacred", "figure_1_expected_reduction",
    "cyclic_counterexample", "cyclic_counterexample_sacred",
    "figure_5", "figure_5_endpoints",
    "example_5_1_hypergraph", "example_5_1_sacred", "example_5_1_independent_tree_sets",
    "triangle", "square_cycle", "triangle_with_covering_edge", "paper_hypergraphs",
    "university_schema", "supplier_part_schema", "cyclic_supplier_schema",
    # random hypergraphs
    "node_names", "random_acyclic_hypergraph", "random_cyclic_hypergraph",
    "random_hypergraph", "random_sacred_set", "mutate_to_cyclic",
    "chain_hypergraph", "star_hypergraph", "ring_hypergraph",
    # relational workloads
    "generate_database", "generate_consistent_database", "add_dangling_tuples",
    "query_attribute_workload", "skewed_chain_database", "skewed_chain_endpoints",
    # cyclic workload families
    "triangle_core_chain", "k_cycle_hypergraph", "clique_augmented_chain",
    "cyclic_workload_families",
]
