"""Random hypergraph generators for the property tests and benchmark sweeps.

The paper has no experimental workload of its own (its evaluation is by
worked example), so the theorem-scale experiments sweep generated families:

* :func:`random_acyclic_hypergraph` grows a hypergraph along a random join
  tree, which guarantees α-acyclicity by construction;
* :func:`random_cyclic_hypergraph` plants a cycle (a ring of partially
  overlapping edges with no covering edge) and pads it with acyclic growth,
  guaranteeing cyclicity by construction;
* :func:`random_hypergraph` is an unconstrained Erdős–Rényi-style generator
  whose acyclicity is whatever it happens to be (useful for unbiased property
  tests);
* :func:`mutate_to_cyclic` adds a single cycle-creating edge to an acyclic
  hypergraph, for before/after comparisons.

All generators take an explicit ``random.Random`` (or a seed) so every test
and benchmark is reproducible.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.acyclicity import is_acyclic
from ..core.hypergraph import Hypergraph
from ..core.nodes import Node, sorted_nodes
from ..exceptions import GenerationError

__all__ = [
    "node_names",
    "random_acyclic_hypergraph",
    "random_cyclic_hypergraph",
    "random_hypergraph",
    "random_sacred_set",
    "mutate_to_cyclic",
    "chain_hypergraph",
    "star_hypergraph",
    "ring_hypergraph",
]


def _rng(seed_or_rng: int | random.Random | None) -> random.Random:
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(seed_or_rng)


def node_names(count: int, *, prefix: str = "N") -> Tuple[str, ...]:
    """``count`` distinct node names: single letters when they suffice, ``N1, N2, …`` otherwise."""
    letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    if count <= len(letters):
        return tuple(letters[:count])
    return tuple(f"{prefix}{index}" for index in range(1, count + 1))


def random_acyclic_hypergraph(num_edges: int, *, max_arity: int = 4,
                              seed: int | random.Random | None = 0,
                              name: Optional[str] = None) -> Hypergraph:
    """Generate an α-acyclic hypergraph with ``num_edges`` edges.

    Construction: start from one random edge; every further edge picks an
    existing edge as its join-tree parent, reuses a non-empty subset of the
    parent's nodes as separator, and pads with fresh nodes.  The running
    intersection property holds by construction, so the result is acyclic.
    """
    if num_edges < 1:
        raise GenerationError("an acyclic hypergraph needs at least one edge")
    if max_arity < 1:
        raise GenerationError("max_arity must be at least 1")
    rng = _rng(seed)
    fresh = iter(node_names(num_edges * max_arity + max_arity))
    first_arity = rng.randint(1, max_arity)
    edges: List[frozenset] = [frozenset(next(fresh) for _ in range(first_arity))]
    for _ in range(num_edges - 1):
        parent = rng.choice(edges)
        parent_nodes = sorted_nodes(parent)
        separator_size = rng.randint(1, min(len(parent_nodes), max(1, max_arity - 1)))
        separator = rng.sample(list(parent_nodes), separator_size)
        fresh_count = rng.randint(0 if separator_size > 0 else 1,
                                  max(0, max_arity - separator_size))
        new_edge = frozenset(separator) | frozenset(next(fresh) for _ in range(fresh_count))
        edges.append(new_edge)
    return Hypergraph(edges, name=name or f"acyclic({num_edges})")


def ring_hypergraph(length: int, *, arity: int = 2, overlap: int = 1,
                    prefix: str = "R", name: Optional[str] = None) -> Hypergraph:
    """A ring of ``length`` edges, each overlapping the next in ``overlap`` nodes.

    For ``length ≥ 3`` (and ``overlap < arity``) the ring is cyclic: no edge
    contains another, no articulation set exists, and GYO gets stuck.
    """
    if length < 3:
        raise GenerationError("a ring needs at least three edges")
    if overlap >= arity:
        raise GenerationError("overlap must be smaller than the edge arity")
    # Lay out nodes around a circle; edge i covers a window of `arity` nodes
    # starting at position i * (arity - overlap).
    step = arity - overlap
    total_nodes = length * step
    nodes = [f"{prefix}{index}" for index in range(total_nodes)]
    edges = []
    for index in range(length):
        start = index * step
        edge = frozenset(nodes[(start + offset) % total_nodes] for offset in range(arity))
        edges.append(edge)
    return Hypergraph(edges, name=name or f"ring({length})")


def chain_hypergraph(length: int, *, arity: int = 3, overlap: int = 2,
                     prefix: str = "C", name: Optional[str] = None) -> Hypergraph:
    """A chain of ``length`` overlapping edges (an interval hypergraph; always acyclic).

    Fig. 5's reconstruction is ``chain_hypergraph(4, arity=3, overlap=2)`` up
    to renaming.
    """
    if length < 1:
        raise GenerationError("a chain needs at least one edge")
    if overlap >= arity:
        raise GenerationError("overlap must be smaller than the edge arity")
    step = arity - overlap
    total_nodes = arity + step * (length - 1)
    nodes = [f"{prefix}{index}" for index in range(total_nodes)]
    edges = []
    for index in range(length):
        start = index * step
        edges.append(frozenset(nodes[start:start + arity]))
    return Hypergraph(edges, name=name or f"chain({length})")


def star_hypergraph(rays: int, *, arity: int = 2, prefix: str = "S",
                    name: Optional[str] = None) -> Hypergraph:
    """A star: ``rays`` edges all sharing one central node (always acyclic)."""
    if rays < 1:
        raise GenerationError("a star needs at least one ray")
    centre = f"{prefix}0"
    edges = []
    for index in range(1, rays + 1):
        edge = {centre} | {f"{prefix}{index}_{offset}" for offset in range(1, arity)}
        edges.append(frozenset(edge))
    return Hypergraph(edges, name=name or f"star({rays})")


def random_cyclic_hypergraph(num_edges: int, *, max_arity: int = 4,
                             seed: int | random.Random | None = 0,
                             name: Optional[str] = None) -> Hypergraph:
    """Generate a cyclic hypergraph: a planted ring plus random acyclic growth.

    At least three edges are required.  The planted ring guarantees a
    node-generated sub-hypergraph with no articulation set, so the result is
    cyclic regardless of the added edges; the construction is verified with
    the GYO test and re-tried with more overlap in the (rare) case padding
    accidentally covers the ring.
    """
    if num_edges < 3:
        raise GenerationError("a cyclic hypergraph needs at least three edges")
    rng = _rng(seed)
    ring_length = rng.randint(3, max(3, min(num_edges, 5)))
    core = ring_hypergraph(ring_length, arity=max(2, min(3, max_arity)), overlap=1,
                           prefix="Q")
    edges = list(core.edges)
    fresh_names = (f"Z{index}" for index in range(1, num_edges * max_arity + 1))
    while len(edges) < num_edges:
        parent = rng.choice(edges)
        parent_nodes = sorted_nodes(parent)
        separator_size = rng.randint(1, min(len(parent_nodes), max(1, max_arity - 1)))
        separator = rng.sample(list(parent_nodes), separator_size)
        fresh_count = rng.randint(1, max(1, max_arity - separator_size))
        new_edge = frozenset(separator) | frozenset(next(fresh_names) for _ in range(fresh_count))
        if any(new_edge >= existing for existing in edges):
            continue
        edges.append(new_edge)
    result = Hypergraph(edges, name=name or f"cyclic({num_edges})")
    if is_acyclic(result):  # pragma: no cover - the planted ring prevents this
        raise GenerationError("failed to generate a cyclic hypergraph")
    return result


def random_hypergraph(num_nodes: int, num_edges: int, *, max_arity: int = 4,
                      min_arity: int = 1, seed: int | random.Random | None = 0,
                      name: Optional[str] = None) -> Hypergraph:
    """An unconstrained random hypergraph (acyclic or cyclic, as luck has it)."""
    if num_nodes < 1 or num_edges < 1:
        raise GenerationError("random_hypergraph needs at least one node and one edge")
    if min_arity > max_arity:
        raise GenerationError("min_arity cannot exceed max_arity")
    rng = _rng(seed)
    nodes = list(node_names(num_nodes))
    edges = []
    for _ in range(num_edges):
        arity = rng.randint(min_arity, min(max_arity, num_nodes))
        edges.append(frozenset(rng.sample(nodes, arity)))
    return Hypergraph(edges, name=name or f"random({num_nodes},{num_edges})")


def random_sacred_set(hypergraph: Hypergraph, *, max_size: int = 3,
                      seed: int | random.Random | None = 0) -> frozenset:
    """A random subset of the hypergraph's nodes to use as sacred / query attributes."""
    rng = _rng(seed)
    nodes = list(sorted_nodes(hypergraph.nodes))
    if not nodes:
        return frozenset()
    size = rng.randint(1, min(max_size, len(nodes)))
    return frozenset(rng.sample(nodes, size))


def mutate_to_cyclic(hypergraph: Hypergraph, *, seed: int | random.Random | None = 0
                     ) -> Hypergraph:
    """Plant a triangle among existing nodes so that the result is cyclic.

    Three existing nodes are picked and linked pairwise by three new 2-node
    edges; unless an existing edge already covers the triple, the triangle is
    a cyclic core.  Raises :class:`GenerationError` when the hypergraph is too
    small (or too densely covered) to be made cyclic this way.
    """
    rng = _rng(seed)
    nodes = list(sorted_nodes(hypergraph.nodes))
    if len(nodes) < 3:
        raise GenerationError("need at least three nodes to plant a cycle")
    for _ in range(200):
        picked = rng.sample(nodes, 3)
        first, second, third = picked
        candidate = hypergraph.add_edges([
            frozenset({first, second}),
            frozenset({second, third}),
            frozenset({third, first}),
        ])
        if not is_acyclic(candidate):
            return candidate.with_name(f"{hypergraph.name or 'H'}+cycle")
    raise GenerationError("could not make the hypergraph cyclic by planting a triangle")
