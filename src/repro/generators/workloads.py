"""Synthetic relational data and query workloads for the Section 7 experiments.

The paper's database claims are about query *semantics*, not about a concrete
data set, so the E-UR and E-JOIN experiments run on synthetic instances whose
parameters (tuples per relation, value skew, fraction of dangling tuples) are
explicit.  Dangling tuples are what separates naive join plans from semijoin-
reduced ones, so the generator controls them directly.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.hypergraph import Hypergraph
from ..core.nodes import sorted_nodes
from ..exceptions import GenerationError
from ..relational.database import Database
from ..relational.relation import Relation
from ..relational.schema import Attribute, DatabaseSchema
from .random_hypergraphs import chain_hypergraph, ring_hypergraph

__all__ = [
    "generate_database",
    "generate_consistent_database",
    "add_dangling_tuples",
    "query_attribute_workload",
    "skewed_chain_database",
    "skewed_chain_endpoints",
    "triangle_core_chain",
    "k_cycle_hypergraph",
    "clique_augmented_chain",
    "cyclic_workload_families",
]


def _rng(seed_or_rng: int | random.Random | None) -> random.Random:
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(seed_or_rng)


def generate_consistent_database(schema: DatabaseSchema, *, universe_rows: int = 50,
                                 domain_size: int = 12,
                                 seed: int | random.Random | None = 0) -> Database:
    """Generate a globally consistent database over ``schema``.

    A synthetic universal relation with ``universe_rows`` rows over the
    schema's full attribute set is generated first; every relation instance is
    then its projection onto the relation's scheme.  By construction every
    stored tuple participates in the universal join (no dangling tuples), so
    the database is globally — hence also pairwise — consistent.
    """
    rng = _rng(seed)
    attributes = tuple(sorted_nodes(schema.attributes))
    if not attributes:
        raise GenerationError("the schema has no attributes")
    universe: List[Dict[Attribute, Any]] = []
    for _ in range(universe_rows):
        universe.append({attribute: f"{attribute}{rng.randint(1, domain_size)}"
                         for attribute in attributes})
    rows: Dict[str, List[Dict[Attribute, Any]]] = {}
    for relation_schema in schema:
        projected = [{attribute: row[attribute] for attribute in relation_schema.attributes}
                     for row in universe]
        rows[relation_schema.name] = projected
    return Database.from_rows(schema, rows)


def add_dangling_tuples(database: Database, *, fraction: float = 0.5,
                        seed: int | random.Random | None = 0) -> Database:
    """Add dangling tuples to every relation of a database.

    For each relation, ``fraction`` × (current size) new tuples are added
    whose values are fresh (never used elsewhere), so they cannot join with
    anything — they are exactly the tuples a full reducer removes and the
    tuples that blow up naive join plans' intermediate sizes the least but
    waste their scans; more importantly they make the database globally
    inconsistent, which is what distinguishes the two universal-relation
    semantics in E-UR.
    """
    if fraction < 0:
        raise GenerationError("fraction must be non-negative")
    rng = _rng(seed)
    current = database
    counter = 0
    for relation in database.relations():
        extra_count = int(len(relation) * fraction)
        extra_rows = []
        for _ in range(extra_count):
            counter += 1
            extra_rows.append({attribute: f"dangling-{attribute}-{counter}-{rng.randint(0, 10**6)}"
                               for attribute in relation.attributes})
        if extra_rows:
            current = current.with_relation(relation.add_rows(extra_rows))
    return current


def generate_database(schema: DatabaseSchema, *, universe_rows: int = 50,
                      domain_size: int = 12, dangling_fraction: float = 0.0,
                      seed: int | random.Random | None = 0) -> Database:
    """Generate a database with a controlled fraction of dangling tuples.

    ``dangling_fraction = 0`` yields a globally consistent instance (see
    :func:`generate_consistent_database`); larger values add that fraction of
    non-joining tuples per relation.
    """
    rng = _rng(seed)
    consistent = generate_consistent_database(schema, universe_rows=universe_rows,
                                              domain_size=domain_size, seed=rng)
    if dangling_fraction <= 0:
        return consistent
    return add_dangling_tuples(consistent, fraction=dangling_fraction, seed=rng)


def skewed_chain_database(chain_length: int = 3, *, heads: int = 30, fanout: int = 20,
                          junction_values: int = 4,
                          seed: int | random.Random | None = 0) -> Database:
    """A binary chain ``C0—C1—…—C_L`` with deliberately skewed cardinalities.

    The shape is the adaptive-planning benchmark workload:

    * ``R1`` over ``(C0, C1)`` fans each of ``heads`` C0-values out to
      ``fanout`` *globally unique* C1-values — ``heads × fanout`` rows with a
      huge ``C1`` domain;
    * ``R2`` over ``(C1, C2)`` funnels every C1-value into one of only
      ``junction_values`` C2-values — same row count, tiny ``C2`` domain;
    * the remaining relations ``R3 … R_L`` are tiny 1:1 lookups over the
      ``junction_values`` values.

    Every tuple participates in the universal join (no dangling tuples), so
    the skew — not reduction — is the whole story: a static bottom-up join
    rooted at the lexicographically-first chain vertex drags the wide ``C1``
    separator through its intermediates, while a cardinality-aware plan
    folds from the narrow junction side and stays near the output size.
    Query the endpoints (:func:`skewed_chain_endpoints`) to see the gap.
    """
    if chain_length < 2:
        raise GenerationError("a skewed chain needs at least two edges")
    if heads < 1 or fanout < 1 or junction_values < 1:
        raise GenerationError("heads, fanout and junction_values must be positive")
    rng = _rng(seed)
    relations = {f"R{index}": (f"C{index - 1}", f"C{index}")
                 for index in range(1, chain_length + 1)}
    schema = DatabaseSchema.from_dict(relations, name=f"skewed-chain({chain_length})")
    tuples: Dict[str, List[Tuple[Any, Any]]] = {name: [] for name in relations}
    for head in range(heads):
        for branch in range(fanout):
            tuples["R1"].append((f"C0-{head}", f"C1-{head}-{branch}"))
            tuples["R2"].append((f"C1-{head}-{branch}",
                                 f"C2-{rng.randint(1, junction_values)}"))
    for index in range(3, chain_length + 1):
        tuples[f"R{index}"] = [(f"C{index - 1}-{value}", f"C{index}-{value}")
                               for value in range(1, junction_values + 1)]
    return Database.from_tuples(schema, tuples)


def skewed_chain_endpoints(chain_length: int = 3) -> Tuple[Attribute, Attribute]:
    """The endpoint attribute pair of a :func:`skewed_chain_database` chain."""
    return ("C0", f"C{chain_length}")


def triangle_core_chain(chain_length: int = 4, *, arity: int = 3, overlap: int = 2,
                        name: Optional[str] = None) -> Hypergraph:
    """A Fig.-5-style chain whose head attribute closes into an uncovered triangle.

    The chain ``C0C1C2, C1C2C3, …`` is acyclic; the three binary edges
    ``{C0,T1}, {T1,T2}, {T2,C0}`` form a triangle with no covering edge, so
    the hypergraph has exactly one cyclic core at the chain's head — the
    benchmark shape for the cyclic execution subsystem (the chain rewards the
    full reducer, the core exercises cluster materialisation).
    """
    chain = chain_hypergraph(chain_length, arity=arity, overlap=overlap)
    triangle = [frozenset({"C0", "T1"}), frozenset({"T1", "T2"}), frozenset({"T2", "C0"})]
    return chain.add_edges(triangle).with_name(
        name or f"triangle-chain({chain_length})")


def k_cycle_hypergraph(k: int, *, prefix: str = "R", name: Optional[str] = None
                       ) -> Hypergraph:
    """The classic ``k``-cycle: binary edges ``{R0,R1}, {R1,R2}, …, {R(k-1),R0}``.

    Cyclic for every ``k ≥ 3`` (it is its own cyclic core: no articulation
    set, GYO gets stuck immediately).
    """
    if k < 3:
        raise GenerationError("a k-cycle needs at least three edges")
    return ring_hypergraph(k, arity=2, overlap=1, prefix=prefix,
                           name=name or f"{k}-cycle")


def clique_augmented_chain(chain_length: int = 3, *, clique_size: int = 4,
                           arity: int = 3, overlap: int = 2,
                           name: Optional[str] = None) -> Hypergraph:
    """A chain with a cocktail-party-style clique of binary edges at its head.

    ``clique_size`` nodes (the chain's ``C0`` plus fresh ``K…`` attributes)
    are linked pairwise, so the head carries a dense cyclic core whose
    minimal cover is a single wide cluster — the stress case for cover
    search's width scoring.
    """
    if clique_size < 3:
        raise GenerationError("a clique core needs at least three nodes")
    chain = chain_hypergraph(chain_length, arity=arity, overlap=overlap)
    members = ["C0"] + [f"K{index}" for index in range(1, clique_size)]
    pairs = [frozenset({members[i], members[j]})
             for i in range(len(members)) for j in range(i + 1, len(members))]
    return chain.add_edges(pairs).with_name(
        name or f"clique-chain({chain_length},{clique_size})")


def cyclic_workload_families(*, chain_length: int = 4) -> Tuple[Tuple[str, Hypergraph], ...]:
    """The named cyclic families the benchmarks and property sweeps iterate over."""
    return (
        ("triangle-chain", triangle_core_chain(chain_length)),
        ("3-cycle", k_cycle_hypergraph(3)),
        ("5-cycle", k_cycle_hypergraph(5)),
        ("clique-chain", clique_augmented_chain(chain_length, clique_size=4)),
    )


def query_attribute_workload(schema: DatabaseSchema, *, queries: int = 10,
                             min_attributes: int = 1, max_attributes: int = 3,
                             seed: int | random.Random | None = 0
                             ) -> Tuple[Tuple[Attribute, ...], ...]:
    """A workload of attribute sets to pose as universal-relation window queries."""
    rng = _rng(seed)
    attributes = list(sorted_nodes(schema.attributes))
    if not attributes:
        raise GenerationError("the schema has no attributes")
    if min_attributes < 1 or max_attributes < min_attributes:
        raise GenerationError("invalid attribute-count bounds for the query workload")
    workload = []
    for _ in range(queries):
        size = rng.randint(min_attributes, min(max_attributes, len(attributes)))
        workload.append(tuple(sorted_nodes(rng.sample(attributes, size))))
    return tuple(workload)
