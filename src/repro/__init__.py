"""repro — a reproduction of Maier & Ullman, "Connections in Acyclic Hypergraphs".

The library has four layers:

* :mod:`repro.core` — the paper's hypergraph theory (Sections 1–6): Graham/GYO
  reduction with sacred nodes, tableaux and tableau reduction, canonical
  connections, independent trees and paths, and executable theorem checkers.
* :mod:`repro.relational` — the Section 7 substrate: an in-memory relational
  algebra, databases, the universal-relation interface, acyclic join
  processing (Yannakakis, semijoin full reducers) and the chase.
* :mod:`repro.queries` — conjunctive and tableau queries with the
  Aho–Sagiv–Ullman minimization machinery the paper builds on.
* :mod:`repro.generators` / :mod:`repro.analysis` / :mod:`repro.io` — the
  paper's figures, random workload generators, diagnostics and text formats.

Quickstart::

    from repro import Hypergraph, graham_reduce, canonical_connection, is_acyclic

    fig1 = Hypergraph.from_compact(["ABC", "CDE", "AEF", "ACE"], name="Fig. 1")
    assert is_acyclic(fig1)
    print(graham_reduce(fig1, {"A", "D"}))          # {A,C,E}, {C,D,E}
    print(canonical_connection(fig1, {"A", "D"}))   # the same partial edges
"""

from .core import (
    CanonicalConnection,
    ConnectingPath,
    ConnectingTree,
    Edge,
    GrahamResult,
    Hypergraph,
    IndependentPathCertificate,
    JoinTree,
    Node,
    NodeSet,
    RowMapping,
    Tableau,
    TableauReductionResult,
    acyclicity_report,
    build_join_tree,
    canonical_connection,
    canonical_connection_result,
    check_all,
    check_theorem_3_5,
    check_theorem_6_1,
    connection_nodes,
    connection_objects,
    find_independent_path,
    graham_reduce,
    graham_reduction,
    gyo_reduction,
    independent_path_exists,
    is_acyclic,
    is_acyclic_by_definition,
    is_acyclic_via_join_tree,
    is_berge_acyclic,
    is_beta_acyclic,
    is_independent_path,
    tableau_reduce,
    tableau_reduction,
)
from .exceptions import (
    AcyclicHypergraphError,
    CyclicHypergraphError,
    HypergraphError,
    ReproError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # data structures
    "Hypergraph", "Edge", "Node", "NodeSet", "Tableau", "RowMapping", "JoinTree",
    "GrahamResult", "TableauReductionResult", "CanonicalConnection",
    "ConnectingTree", "ConnectingPath", "IndependentPathCertificate",
    # reductions and connections
    "graham_reduction", "graham_reduce", "gyo_reduction",
    "tableau_reduction", "tableau_reduce",
    "canonical_connection", "canonical_connection_result",
    "connection_nodes", "connection_objects",
    # acyclicity
    "is_acyclic", "is_acyclic_by_definition", "is_acyclic_via_join_tree",
    "is_berge_acyclic", "is_beta_acyclic", "acyclicity_report", "build_join_tree",
    # independent paths / theorems
    "find_independent_path", "independent_path_exists", "is_independent_path",
    "check_theorem_3_5", "check_theorem_6_1", "check_all",
    # exceptions
    "ReproError", "HypergraphError", "CyclicHypergraphError", "AcyclicHypergraphError",
]
